"""Resource-constrained list scheduler (paper Section III-C).

"The scheduler is a customised resource-constrained list scheduler.
Output of the scheduler are the contents for all context memories."

Model of the machine the scheduler targets:

* each PE executes one operation at a time: an operation issued at tick
  ``t`` occupies its PE until ``t + latency`` and its result is available
  (locally) at ``t + latency``;
* zero-time values (constants, parameters, loop-carried registers) are
  preloaded into context/register memory and readable by any PE at tick
  0 at no routing cost;
* moving a value between PEs costs ``route_hop`` ticks per interconnect
  hop ("results of operations can be passed on, allowing the routing of
  operands where no direct connection exists");
* the SensorAccess module is a single pipelined memory port on one PE:
  it accepts one request per :attr:`io_issue_ticks` and delivers the
  result after the operation's latency — all IO of the model serialises
  through it, which is why the schedule grows with the bunch count
  (paper: 93 → 99 → 111 ticks for 1 → 4 → 8 bunches).

Priorities are latency-weighted longest-path-to-sink (critical path
first), the classic list-scheduling heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cgra.dfg import DataflowGraph, DFGNode
from repro.cgra.fabric import CgraFabric
from repro.cgra.ops import Op
from repro.errors import ScheduleError

__all__ = ["ScheduledOp", "Schedule", "ListScheduler"]


@dataclass(frozen=True)
class ScheduledOp:
    """Placement of one operation: PE, issue tick and completion tick."""

    node_id: int
    op: Op
    pe: tuple[int, int]
    start: int
    finish: int


@dataclass
class Schedule:
    """Result of scheduling one loop body onto a fabric."""

    graph: DataflowGraph
    fabric: CgraFabric
    ops: dict[int, ScheduledOp] = field(default_factory=dict)

    @property
    def length(self) -> int:
        """Schedule length in clock ticks (the paper's headline metric):
        the tick by which every operation of one iteration has finished."""
        return max((s.finish for s in self.ops.values()), default=0)

    def ops_on_pe(self, pe: tuple[int, int]) -> list[ScheduledOp]:
        """All operations placed on one PE, by issue tick."""
        return sorted((s for s in self.ops.values() if s.pe == pe), key=lambda s: s.start)

    def pe_utilisation(self) -> dict[tuple[int, int], float]:
        """Busy fraction of each PE over the schedule length.

        Uses the same occupancy the scheduler enforces: IO operations
        hold their PE only for the SensorAccess issue window, other
        operations for their full latency.
        """
        length = max(self.length, 1)
        busy: dict[tuple[int, int], int] = {pe: 0 for pe in self.fabric.pes}
        latencies = self.fabric.config.latencies
        for s in self.ops.values():
            node = self.graph.node(s.node_id)
            occupancy = (
                ListScheduler.IO_ISSUE_TICKS
                if node.is_io()
                else max(1, latencies.of(s.op))
            )
            busy[s.pe] += occupancy
        return {pe: b / length for pe, b in busy.items()}

    def io_op_count(self) -> int:
        """Number of SensorAccess operations per iteration."""
        return sum(1 for s in self.ops.values() if self.graph.node(s.node_id).is_io())

    def context_depths(self) -> dict[tuple[int, int], int]:
        """Context-memory entries each PE needs for this schedule."""
        depths = {pe: 0 for pe in self.fabric.pes}
        for s in self.ops.values():
            depths[s.pe] += 1
        return depths

    def max_context_depth(self) -> int:
        """Deepest per-PE context memory the schedule requires."""
        return max(self.context_depths().values(), default=0)

    def verify(self, f_rev: float | None = None):
        """Run the static verifier; return its diagnostic report.

        Unlike :meth:`validate` (first-error-wins exception), this
        re-derives legality from the graph and fabric alone and reports
        *every* violation as a diagnostic — see
        :func:`repro.cgra.verify.verify_schedule`.
        """
        # Imported lazily: repro.cgra.verify imports this module.
        from repro.cgra.verify import verify_schedule

        return verify_schedule(self, f_rev=f_rev)

    def validate(self) -> None:
        """Re-check all resource and dependence constraints.

        Raises :class:`~repro.errors.ScheduleError` on any violation;
        used by tests and run once after scheduling as a safety net.
        """
        latencies = self.fabric.config.latencies
        # 1. every non-zero-time node is scheduled exactly once
        for node in self.graph.nodes.values():
            if node.is_zero_time():
                continue
            if node.node_id not in self.ops:
                raise ScheduleError(f"node {node.node_id} ({node.op}) not scheduled")
        # 2. dependences with routing
        for s in self.ops.values():
            node = self.graph.node(s.node_id)
            for operand_id in node.operands:
                producer = self.graph.node(operand_id)
                if producer.is_zero_time():
                    continue
                p = self.ops[operand_id]
                ready = p.finish + self.fabric.routing_delay(p.pe, s.pe)
                if s.start < ready:
                    raise ScheduleError(
                        f"node {s.node_id} starts at {s.start} before operand "
                        f"{operand_id} is ready at {ready}"
                    )
        # 3. PE exclusivity
        by_pe: dict[tuple[int, int], list[ScheduledOp]] = {}
        for s in self.ops.values():
            by_pe.setdefault(s.pe, []).append(s)
        for pe, ops in by_pe.items():
            ops.sort(key=lambda s: s.start)
            for a, b in zip(ops, ops[1:]):
                node_a = self.graph.node(a.node_id)
                occupancy = (
                    ListScheduler.IO_ISSUE_TICKS
                    if node_a.is_io()
                    else max(1, latencies.of(a.op))
                )
                if b.start < a.start + occupancy:
                    raise ScheduleError(
                        f"PE {pe} oversubscribed: ops {a.node_id} and {b.node_id} overlap"
                    )
        # 4. capability
        for s in self.ops.values():
            if not self.fabric.supports(s.pe, s.op):
                raise ScheduleError(f"PE {s.pe} cannot execute {s.op}")
        # 5. context-memory capacity
        limit = self.fabric.config.context_slots
        for pe, depth in self.context_depths().items():
            if depth > limit:
                raise ScheduleError(
                    f"PE {pe} needs {depth} context entries, memory holds {limit}"
                )


class ListScheduler:
    """Critical-path-first list scheduler with routing-aware placement."""

    #: SensorAccess accepts a new request every this many ticks (the port
    #: is pipelined; results still take the operation's full latency).
    IO_ISSUE_TICKS = 2

    def __init__(self, fabric: CgraFabric) -> None:
        self.fabric = fabric

    def _priorities(self, graph: DataflowGraph) -> dict[int, int]:
        """Longest latency-weighted path from each node to any sink."""
        latencies = self.fabric.config.latencies
        order = list(graph.topological_order())
        prio: dict[int, int] = {}
        consumers = graph.consumers()
        for node in reversed(order):
            downstream = max((prio[c] for c in consumers[node.node_id]), default=0)
            prio[node.node_id] = downstream + latencies.of(node.op)
        return prio

    @staticmethod
    def _earliest_gap(busy: list[tuple[int, int]], t: int, span: int) -> int:
        """Earliest start ≥ t such that [start, start+span) avoids ``busy``
        (sorted, non-overlapping intervals)."""
        start = t
        for b0, b1 in busy:
            if start + span <= b0:
                break
            if start < b1:
                start = b1
        return start

    @staticmethod
    def _insert_interval(busy: list[tuple[int, int]], start: int, span: int) -> None:
        import bisect

        bisect.insort(busy, (start, start + span))

    def schedule(self, graph: DataflowGraph) -> Schedule:
        """Schedule one loop body; returns a validated :class:`Schedule`."""
        graph.validate()
        latencies = self.fabric.config.latencies
        prio = self._priorities(graph)
        consumers = graph.consumers()
        result = Schedule(graph=graph, fabric=self.fabric)
        busy: dict[tuple[int, int], list[tuple[int, int]]] = {pe: [] for pe in self.fabric.pes}
        depth: dict[tuple[int, int], int] = {pe: 0 for pe in self.fabric.pes}
        slot_limit = self.fabric.config.context_slots

        pending = {
            n.node_id: sum(1 for o in graph.node(n.node_id).operands
                           if not graph.node(o).is_zero_time())
            for n in graph.nodes.values()
            if not n.is_zero_time()
        }
        ready = [nid for nid, deps in pending.items() if deps == 0]

        while ready:
            ready.sort(key=lambda nid: (-prio[nid], nid))
            nid = ready.pop(0)
            node = graph.node(nid)
            latency = latencies.of(node.op)
            occupancy = self.IO_ISSUE_TICKS if node.is_io() else max(1, latency)
            candidates = (
                [self.fabric.io_pe] if node.is_io() else self.fabric.candidates(node.op)
            )

            best: tuple[int, int, tuple[int, int]] | None = None  # (finish, start, pe)
            for pe in candidates:
                if depth[pe] >= slot_limit:
                    continue  # context memory full on this PE
                data_ready = 0
                for operand_id in node.operands:
                    producer = graph.node(operand_id)
                    if producer.is_zero_time():
                        continue
                    p = result.ops[operand_id]
                    data_ready = max(
                        data_ready, p.finish + self.fabric.routing_delay(p.pe, pe)
                    )
                start = self._earliest_gap(busy[pe], data_ready, occupancy)
                finish = start + latency
                key = (finish, start, pe)
                if best is None or key < best:
                    best = key
            if best is None:
                raise ScheduleError(
                    f"no placement found for node {nid} ({node.op}); "
                    "all capable PEs are at context-memory capacity"
                )
            finish, start, pe = best
            depth[pe] += 1
            self._insert_interval(busy[pe], start, occupancy)
            result.ops[nid] = ScheduledOp(
                node_id=nid, op=node.op, pe=pe, start=start, finish=finish
            )
            for c in consumers[nid]:
                if c in pending:
                    pending[c] -= 1
                    if pending[c] == 0:
                        ready.append(c)

        unscheduled = [nid for nid, deps in pending.items() if nid not in result.ops]
        if unscheduled:
            raise ScheduleError(f"could not schedule nodes {unscheduled}")
        result.validate()
        return result
