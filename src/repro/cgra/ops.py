"""CGRA operator set and latencies.

The paper's PEs "can have [their] own set of operators to perform
numerical operations, with a selection ranging from pure integer
arithmetic to floating point operations up to CORDIC"; for the beam-model
experiment "basic floating point and square-root operators are in use".

Latencies are in CGRA clock ticks at the 111 MHz overlay clock.  The
defaults below are representative single-precision FPGA FP-core depths
and are *calibration parameters* of the reproduction: E6 records the
schedule lengths they produce next to the paper's 128/111/99/93 ticks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["Op", "OperatorLatencies", "COMMUTATIVE_OPS"]


class Op(enum.Enum):
    """Operations a processing element can execute."""

    CONST = "const"          #: materialise a compile-time constant
    PARAM = "param"          #: live-in parameter (loaded before the loop)
    PHI = "phi"              #: loop-carried register (previous iteration's value)
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FNEG = "fneg"
    FMIN = "fmin"
    FMAX = "fmax"
    CMP_LT = "cmp_lt"        #: a < b  → 1.0 / 0.0
    CMP_LE = "cmp_le"
    SELECT = "select"        #: cond ? a : b
    SENSOR_READ = "sensor_read"      #: read_sensor(id) — no address
    SENSOR_READ_ADDR = "sensor_read_addr"  #: read_sensor2(id, addr)
    ACTUATOR_WRITE = "actuator_write"      #: write_actuator(id, value)


#: Ops whose operand order may be swapped by optimisers.
COMMUTATIVE_OPS = frozenset({Op.FADD, Op.FMUL, Op.FMIN, Op.FMAX})

#: Ops that interact with the SensorAccess module and therefore contend
#: for its single port.
IO_OPS = frozenset({Op.SENSOR_READ, Op.SENSOR_READ_ADDR, Op.ACTUATOR_WRITE})

#: Ops that are free at run time (values preloaded into registers).
ZERO_TIME_OPS = frozenset({Op.CONST, Op.PARAM, Op.PHI})


@dataclass(frozen=True)
class OperatorLatencies:
    """Per-operator latencies in CGRA clock ticks.

    An operation issued at tick ``t`` produces its result at
    ``t + latency`` and occupies its PE for the whole interval — the
    context memory of the PE holds one operation at a time, as in the
    paper's overlay.
    """

    fadd: int = 3
    fsub: int = 3
    fmul: int = 3
    fdiv: int = 12
    fsqrt: int = 16
    fneg: int = 1
    fmin: int = 2
    fmax: int = 2
    cmp: int = 2
    select: int = 1
    sensor_read: int = 3
    sensor_read_addr: int = 3
    actuator_write: int = 2
    #: Interconnect delay per hop between neighbouring PEs.
    route_hop: int = 1

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigurationError(f"latency {name} must be >= 0, got {value}")

    def of(self, op: Op) -> int:
        """Latency of one operation in ticks (0 for preloaded values)."""
        table = {
            Op.CONST: 0,
            Op.PARAM: 0,
            Op.PHI: 0,
            Op.FADD: self.fadd,
            Op.FSUB: self.fsub,
            Op.FMUL: self.fmul,
            Op.FDIV: self.fdiv,
            Op.FSQRT: self.fsqrt,
            Op.FNEG: self.fneg,
            Op.FMIN: self.fmin,
            Op.FMAX: self.fmax,
            Op.CMP_LT: self.cmp,
            Op.CMP_LE: self.cmp,
            Op.SELECT: self.select,
            Op.SENSOR_READ: self.sensor_read,
            Op.SENSOR_READ_ADDR: self.sensor_read_addr,
            Op.ACTUATOR_WRITE: self.actuator_write,
        }
        return table[op]
