"""``python -m repro.cgra.lint`` — static analysis of mini-C kernels.

Runs the three :mod:`repro.cgra.verify` passes end to end without
executing anything: semantic lint of the source, list scheduling plus
schedule/context verification on the default fabric, and interval range
analysis.  Either over source files::

    python -m repro.cgra.lint model.c other.c

or over every built-in beam-model kernel (the CI configuration)::

    python -m repro.cgra.lint --all --fail-on-error

Exit status is 0 when no ERROR-severity diagnostic was produced, 1 when
diagnostics tripped the gate, and **2 for an internal analyzer error**
(unreadable file, analyzer crash) — so tooling can tell "the kernel is
dirty" from "the analyzer is broken".  ``--fail-on-error`` is accepted
for explicitness and ``--fail-on-warning`` tightens the gate.
``--json`` emits one JSON object per target for tooling; every
diagnostic carries its analyzer name (``analyzer``/``pass``) and
``severity``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cgra.verify import (
    DiagnosticReport,
    Severity,
    analyze_ranges,
    lint_source,
    verify_schedule,
)
from repro.errors import ReproError

__all__ = ["main", "BEAM_PARAM_BOUNDS"]

#: Physically plausible ranges for the beam model's live-in parameters
#: (an SIS18-class heavy-ion synchrotron); used for the built-in kernels
#: so the range pass works with finite bounds where possible.
BEAM_PARAM_BOUNDS: dict[str, tuple[float, float]] = {
    "GAMMA_R0": (1.0, 25.0),
    "QMC2": (0.0, 1e-6),
    "L_R": (10.0, 1100.0),
    "ALPHA_C": (0.0, 1.0),
    "V_SCALE": (0.0, 1e6),
    "V_SCALE_REF": (0.0, 1e6),
    "F_SAMPLE": (1e6, 1e10),
    "H_INV": (1.0 / 64.0, 1.0),
}


def _analyze(
    name: str,
    source: str,
    param_bounds: dict[str, tuple[float, float]] | None,
) -> DiagnosticReport:
    """Run lint → compile → schedule → verify → ranges on one source."""
    from repro.cgra.fabric import CgraConfig, CgraFabric
    from repro.cgra.frontend.lower import compile_c_to_dfg
    from repro.cgra.scheduler import ListScheduler

    report = DiagnosticReport()
    report.extend(lint_source(source))
    if not report.ok:
        return report  # semantic errors: the backend would only crash
    try:
        graph = compile_c_to_dfg(source)
        schedule = ListScheduler(CgraFabric(CgraConfig())).schedule(graph)
    except ReproError as exc:
        report.emit(Severity.ERROR, "schedule", "compile-failed", str(exc))
        return report
    report.extend(verify_schedule(schedule))
    report.extend(analyze_ranges(graph, param_bounds=param_bounds))
    return report


def _builtin_targets() -> list[tuple[str, str, dict[str, tuple[float, float]]]]:
    """(name, source, param_bounds) for every shipped kernel variant."""
    from repro.cgra.models import beam_model_source

    out = []
    for n_bunches in (1, 4, 8):
        for pipelined in (True, False):
            name = f"beam_model[n={n_bunches},{'pipelined' if pipelined else 'plain'}]"
            src = beam_model_source(n_bunches=n_bunches, pipelined=pipelined)
            out.append((name, src, BEAM_PARAM_BOUNDS))
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cgra.lint",
        description="Static analysis (lint, schedule verify, range analysis) "
        "of mini-C CGRA kernels.",
    )
    parser.add_argument("files", nargs="*", type=Path, help="mini-C source files")
    parser.add_argument(
        "--all", action="store_true",
        help="analyse every built-in beam-model kernel variant",
    )
    parser.add_argument(
        "--fail-on-error", action="store_true",
        help="exit 1 when any ERROR diagnostic is produced (the default)",
    )
    parser.add_argument(
        "--fail-on-warning", action="store_true",
        help="exit 1 when any WARNING or ERROR diagnostic is produced",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit one JSON object per target instead of text",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress INFO diagnostics in the text output",
    )
    args = parser.parse_args(argv)
    if not args.files and not args.all:
        parser.error("nothing to analyse: pass source files or --all")

    targets: list[tuple[str, str, dict[str, tuple[float, float]] | None]] = []
    internal_error = False
    if args.all:
        try:
            targets.extend(_builtin_targets())
        except Exception:
            import traceback

            print("internal error: cannot build built-in targets:", file=sys.stderr)
            traceback.print_exc()
            internal_error = True
    for path in args.files:
        try:
            targets.append((str(path), path.read_text(), None))
        except OSError as exc:
            print(f"internal error: cannot read {path}: {exc}", file=sys.stderr)
            internal_error = True

    worst = Severity.INFO
    failed = False
    for name, source, bounds in targets:
        try:
            report = _analyze(name, source, bounds)
        except Exception:
            import traceback

            print(f"internal error: analyzer crashed on {name}:", file=sys.stderr)
            traceback.print_exc()
            internal_error = True
            continue
        errors, warnings = len(report.errors()), len(report.warnings())
        if errors:
            worst = Severity.ERROR
        elif warnings and worst is not Severity.ERROR:
            worst = Severity.WARNING
        if args.as_json:
            print(json.dumps({
                "target": name,
                "errors": errors,
                "warnings": warnings,
                "diagnostics": report.to_dicts(),
            }))
        else:
            status = "FAIL" if errors else "ok"
            print(f"{name}: {status} ({errors} errors, {warnings} warnings, "
                  f"{len(report)} total)")
            min_sev = Severity.WARNING if args.quiet else Severity.INFO
            for d in sorted(report, key=lambda d: -int(d.severity)):
                if d.severity >= min_sev:
                    print(f"  {d.render()}")
        if errors:
            failed = True

    if internal_error:
        return 2
    if args.fail_on_warning and worst >= Severity.WARNING:
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
