"""Cycle-accurate execution of scheduled contexts.

Runs the context images tick by tick against a
:class:`~repro.cgra.sensor.SensorBus`.  Numeric behaviour matches the
overlay's single-precision floating-point operators by default
(``numpy.float32`` arithmetic per operation); ``precision="double"``
switches to float64 for precision-ablation studies (benchmark E6b).

Loop-carried registers are initialised from the PHI nodes' init
values/parameters; at the end of every iteration each PHI register
latches its back-edge value — exactly the register update the hardware
performs between contexts.

The executor also records the tick at which every actuator write issues.
Because the schedule is static, that tick is the *same every iteration*:
this determinism is the CGRA's core real-time property, and the jitter
study (E7) reads it from :attr:`CgraExecutor.actuator_write_ticks`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.cgra.context import build_context_images
from repro.cgra.dfg import DataflowGraph
from repro.cgra.engine import compile_program, resolve_engine
from repro.cgra.ops import Op
from repro.cgra.scheduler import Schedule
from repro.cgra.sensor import SensorBus
from repro.errors import ExecutionError, VerificationError
from repro.obs import get_registry
from repro.obs._state import STATE as _OBS

__all__ = ["CgraExecutor"]

_OPS_EXECUTED = get_registry().counter(
    "cgra_ops_executed_total", "operations executed by the CGRA executors"
)
_CONTEXT_SWITCHES = get_registry().counter(
    "cgra_context_switches_total", "context switches (ticks) executed"
)
_TICKS_PER_ITER = get_registry().gauge(
    "cgra_ticks_per_iteration", "schedule length of the running model"
)
_ITERATIONS = get_registry().counter(
    "cgra_iterations_total", "model iterations executed"
)
_ENGINE_ITERATIONS = get_registry().counter(
    "cgra_engine_iterations_total", "iterations executed, by engine"
)
_ITERS_PER_SECOND = get_registry().gauge(
    "cgra_iterations_per_second", "most recent bulk-run iteration throughput"
)


@dataclass
class _Entry:
    tick: int
    op: Op
    node_id: int
    operands: tuple[int, ...]
    io_id: int | None


class CgraExecutor:
    """Executes one compiled loop body iteration by iteration.

    Parameters
    ----------
    schedule:
        The scheduled loop body.
    bus:
        SensorAccess bus with all sensors/actuators registered.
    params:
        Values for the graph's live-in parameters.
    precision:
        ``"single"`` (default; float32 per-operation rounding, like the
        FPGA FP cores) or ``"double"``.
    verify:
        When true, run the static schedule verifier
        (:func:`repro.cgra.verify.verify_schedule`) before accepting the
        load and raise :class:`~repro.errors.VerificationError` listing
        every diagnostic if it finds errors.
    engine:
        ``"interpreted"`` (the per-op cycle-accurate interpreter),
        ``"compiled"`` (the :mod:`repro.cgra.engine` fast path, bit-exact
        with the interpreter), ``"vector"`` (certificate-driven time
        chunks) or ``"auto"`` (per-run planning via
        :mod:`repro.cgra.autotune`, compiled when uncertain).  ``None``
        uses the session default
        (:func:`repro.cgra.engine.get_default_engine`).
    """

    def __init__(
        self,
        schedule: Schedule,
        bus: SensorBus,
        params: dict[str, float] | None = None,
        precision: str = "single",
        verify: bool = False,
        engine: str | None = None,
    ) -> None:
        if precision not in ("single", "double"):
            raise ExecutionError(f"precision must be 'single' or 'double', got {precision!r}")
        if verify:
            # Imported lazily: repro.cgra.verify imports the scheduler.
            from repro.cgra.verify import Severity, verify_schedule

            report = verify_schedule(schedule)
            if not report.ok:
                raise VerificationError(
                    "schedule failed static verification:\n"
                    + report.format(min_severity=Severity.WARNING)
                )
        self.schedule = schedule
        self.graph: DataflowGraph = schedule.graph
        self.bus = bus
        self.precision = precision
        self.engine = resolve_engine(engine)
        self._ftype = np.float32 if precision == "single" else np.float64
        params = dict(params or {})
        missing = [p for p in self.graph.params if p not in params]
        if missing:
            raise ExecutionError(f"missing parameter values: {missing}")
        extra = [p for p in params if p not in self.graph.params]
        if extra:
            raise ExecutionError(f"unknown parameters: {extra}")

        # Host-interface name indexes, precomputed once at load so
        # set_param/set_register/register_of need no graph scans.
        self._param_nodes: dict[str, list[int]] = {}
        self._phi_named: dict[str, int] = {}
        self._named_order: dict[str, list[int]] = {}
        for node in self.graph.nodes.values():
            if node.op is Op.PARAM:
                self._param_nodes.setdefault(node.name, []).append(node.node_id)
            if node.op is Op.PHI and node.name:
                self._phi_named.setdefault(node.name, node.node_id)
            if node.name:
                self._named_order.setdefault(node.name, []).append(node.node_id)

        self._params = {k: self._round(v) for k, v in params.items()}
        self._compiled = None
        self._vector = None
        self._slots: list | None = None
        self._registers: dict[int, float] | None = None
        if self.engine in ("compiled", "vector", "auto"):
            self._compiled = compile_program(schedule, precision)
            self._slots = self._compiled.initial_slots(params)
            self._program: list[_Entry] = []
            #: Most recent autotune decision ("auto" engine only).
            self.last_plan = None
        else:
            #: Register file: node id → current value.
            self._registers = {}
            for node in self.graph.nodes.values():
                if node.op is Op.CONST:
                    self._registers[node.node_id] = self._round(node.value)
                elif node.op is Op.PARAM:
                    self._registers[node.node_id] = self._params[node.name]
                elif node.op is Op.PHI:
                    if node.init_param is not None:
                        self._registers[node.node_id] = self._params[node.init_param]
                    else:
                        self._registers[node.node_id] = self._round(node.init_value)

            # Merge all context images into one tick-ordered program.  The
            # per-PE structure matters for scheduling/validation; execution
            # order only needs global tick order (ties are independent ops).
            images = build_context_images(schedule)
            entries: list[_Entry] = []
            for image in images.values():
                for e in image.sorted_entries():
                    entries.append(
                        _Entry(
                            tick=e.tick,
                            op=Op(e.op),
                            node_id=e.node_id,
                            operands=e.operands,
                            io_id=e.io_id,
                        )
                    )
            entries.sort(key=lambda e: (e.tick, e.node_id))
            self._program = entries
        #: Iteration count executed so far.
        self.iterations = 0
        #: Ticks (within the iteration) at which each actuator write
        #: issued during the most recent iteration: io_id → tick.
        self.actuator_write_ticks: dict[int, int] = {}

    @property
    def registers(self) -> dict[int, float]:
        """Register file: node id → current value.

        Live dict for the interpreted engine; for the compiled engine a
        float snapshot of the dense slot array (identical contents — the
        traced step stores every computed node)."""
        if self._registers is not None:
            return self._registers
        return {
            nid: float(value)
            for nid, value in enumerate(self._slots)
            if value is not None
        }

    # -- numeric core ---------------------------------------------------

    def _round(self, value: float) -> float:
        return float(self._ftype(value))

    def _apply(self, op: Op, args: list[float], entry: _Entry) -> float:
        f = self._ftype
        try:
            if op is Op.FADD:
                return float(f(f(args[0]) + f(args[1])))
            if op is Op.FSUB:
                return float(f(f(args[0]) - f(args[1])))
            if op is Op.FMUL:
                return float(f(f(args[0]) * f(args[1])))
            if op is Op.FDIV:
                if args[1] == 0.0:
                    raise ExecutionError(f"division by zero in node {entry.node_id}")
                return float(f(f(args[0]) / f(args[1])))
            if op is Op.FSQRT:
                if args[0] < 0.0:
                    raise ExecutionError(f"sqrt of negative value in node {entry.node_id}")
                return float(f(np.sqrt(f(args[0]))))
            if op is Op.FNEG:
                return float(f(-f(args[0])))
            if op is Op.FMIN:
                return float(f(min(args[0], args[1])))
            if op is Op.FMAX:
                return float(f(max(args[0], args[1])))
            if op is Op.CMP_LT:
                return 1.0 if args[0] < args[1] else 0.0
            if op is Op.CMP_LE:
                return 1.0 if args[0] <= args[1] else 0.0
            if op is Op.SELECT:
                return args[1] if args[0] != 0.0 else args[2]
        except (OverflowError, FloatingPointError) as exc:  # pragma: no cover
            raise ExecutionError(f"numeric fault in node {entry.node_id}: {exc}") from exc
        raise ExecutionError(f"op {op} cannot be applied arithmetically")

    # -- execution --------------------------------------------------------

    @property
    def schedule_length(self) -> int:
        """Ticks per iteration (the real-time budget consumer)."""
        return self.schedule.length

    def set_param(self, name: str, value: float) -> None:
        """Update a live-in parameter *between* iterations (host access)."""
        if name not in self.graph.params:
            raise ExecutionError(f"unknown parameter {name!r}")
        self._params[name] = self._round(value)
        for nid in self._param_nodes.get(name, ()):
            if self._slots is not None:
                self._slots[nid] = self._ftype(value)
            else:
                self._registers[nid] = self._params[name]

    def run_iteration(self) -> None:
        """Execute one loop iteration (one particle revolution)."""
        if self._compiled is not None:
            self._run_compiled(1)
            return
        regs = self._registers
        write_ticks: dict[int, int] = {}
        for entry in self._program:
            if entry.op is Op.SENSOR_READ:
                regs[entry.node_id] = self._round(self.bus.read(entry.io_id))
                continue
            if entry.op is Op.SENSOR_READ_ADDR:
                addr = regs[entry.operands[0]]
                regs[entry.node_id] = self._round(self.bus.read_addr(entry.io_id, addr))
                continue
            if entry.op is Op.ACTUATOR_WRITE:
                self.bus.write(entry.io_id, regs[entry.operands[0]])
                write_ticks[entry.io_id] = entry.tick
                regs[entry.node_id] = 0.0
                continue
            try:
                args = [regs[o] for o in entry.operands]
            except KeyError as exc:
                raise ExecutionError(
                    f"node {entry.node_id} reads unwritten register {exc}"
                ) from None
            with np.errstate(over="ignore", invalid="ignore"):
                value = self._apply(entry.op, args, entry)
            if not math.isfinite(value):
                raise ExecutionError(
                    f"non-finite value {value} produced by node {entry.node_id} "
                    f"({entry.op}) in iteration {self.iterations}"
                )
            regs[entry.node_id] = value
        # Latch loop-carried registers for the next iteration.
        for phi in self.graph.phis():
            regs[phi.node_id] = regs[phi.back_edge]
        self.actuator_write_ticks = write_ticks
        self.iterations += 1
        if _OBS.enabled:
            # Aggregated per iteration, never per op: one flag check is
            # all the disabled cycle-accurate path pays.
            _OPS_EXECUTED.inc(len(self._program), executor="sequential")
            _CONTEXT_SWITCHES.inc(self.schedule.length, executor="sequential")
            _TICKS_PER_ITER.set(self.schedule.length, executor="sequential")
            _ITERATIONS.inc(executor="sequential")
            _ENGINE_ITERATIONS.inc(engine="interpreted")

    def run(self, n_iterations: int) -> None:
        """Execute ``n_iterations`` revolutions."""
        if n_iterations < 0:
            raise ExecutionError("n_iterations must be non-negative")
        if self._compiled is not None:
            if n_iterations:
                engine = self.engine
                if engine == "auto" and n_iterations >= 8:
                    from repro.cgra.autotune import plan_for

                    plan = plan_for(self._compiled, 1, n_iterations)
                    self.last_plan = plan
                    engine = plan.engine
                if engine == "vector":
                    self._run_vector(n_iterations)
                else:
                    self._run_compiled(n_iterations)
            return
        for _ in range(n_iterations):
            self.run_iteration()

    def _run_vector(self, n_iterations: int) -> None:
        """Bulk-run in certificate-driven time chunks (see
        :mod:`repro.cgra.engine_vector`); per-cycle compiled steps cover
        uncertified programs, small runs and chunk tails — so results,
        fault text and iteration counts stay bit-identical to the
        interpreter for every program."""
        from repro.cgra.engine_vector import MIN_CHUNK, get_vector_program

        vp = self._vector
        if vp is None:
            vp = self._vector = get_vector_program(self._compiled)
        if vp.ok and not vp._oracle_done:
            vp.ensure_oracle(self._params)
        if not vp.ok or n_iterations < MIN_CHUNK:
            self._run_compiled(n_iterations)
            return
        program = self._compiled
        from repro.cgra.autotune import chunk_elems_hint

        max_t = vp.max_chunk(hint=chunk_elems_hint())
        done = 0
        chunks = 0
        t0 = time.perf_counter()
        try:
            while n_iterations - done >= MIN_CHUNK:
                T = min(max_t, n_iterations - done)
                progress = [0]
                try:
                    vp.run_chunk(
                        self._slots, self.bus, T, self.iterations + done, progress
                    )
                finally:
                    done += progress[0]
                chunks += 1
        finally:
            self.iterations += done
            if done:
                self.actuator_write_ticks = dict(program.actuator_write_ticks)
            if _OBS.enabled and done:
                elapsed = time.perf_counter() - t0
                n_ops = len(program.entries)
                _OPS_EXECUTED.inc(done * n_ops, executor="sequential")
                _CONTEXT_SWITCHES.inc(done * self.schedule.length, executor="sequential")
                _TICKS_PER_ITER.set(self.schedule.length, executor="sequential")
                _ITERATIONS.inc(done, executor="sequential")
                _ENGINE_ITERATIONS.inc(done, engine="vector")
                if elapsed > 0.0:
                    _ITERS_PER_SECOND.set(done / elapsed, engine="vector")
                if _OBS.profile:
                    from repro.obs.profile import record_program

                    record_program(
                        self.graph.name, "vector", done, elapsed,
                        program.op_class_counts,
                        segments=vp.segment_units(done, chunks),
                    )
        remainder = n_iterations - done
        if remainder:
            self._run_compiled(remainder)

    def _run_compiled(self, n_iterations: int) -> None:
        """Bulk-run the compiled program: (n−1)·fast + 1·traced steps.

        The fast step only stores the loop-carried (PHI) registers; the
        final traced step stores every computed node, so the visible
        register file is identical to ``n_iterations`` interpreter
        iterations (non-PHI registers only ever hold the last iteration's
        values).  Numeric faults surface through the raised FP-error
        state instead of a per-op ``isfinite`` check.
        """
        program = self._compiled
        slots = self._slots
        bus = self.bus
        read, read_addr, write = bus.read, bus.read_addr, bus.write
        fast, traced = program.step_fast, program.step_traced
        done = 0
        t0 = time.perf_counter()
        try:
            with np.errstate(over="raise", invalid="raise", divide="raise"):
                for _ in range(n_iterations - 1):
                    fast(slots, read, read_addr, write)
                    done += 1
                traced(slots, read, read_addr, write)
                done += 1
        except FloatingPointError as exc:
            raise ExecutionError(
                f"non-finite value produced in iteration {self.iterations + done} "
                f"of the compiled kernel: {exc}"
            ) from exc
        finally:
            self.iterations += done
            if done:
                self.actuator_write_ticks = dict(program.actuator_write_ticks)
            if _OBS.enabled and done:
                elapsed = time.perf_counter() - t0
                n_ops = len(program.entries)
                _OPS_EXECUTED.inc(done * n_ops, executor="sequential")
                _CONTEXT_SWITCHES.inc(done * self.schedule.length, executor="sequential")
                _TICKS_PER_ITER.set(self.schedule.length, executor="sequential")
                _ITERATIONS.inc(done, executor="sequential")
                _ENGINE_ITERATIONS.inc(done, engine="compiled")
                if elapsed > 0.0:
                    _ITERS_PER_SECOND.set(done / elapsed, engine="compiled")
                if _OBS.profile:
                    from repro.obs.profile import record_program

                    record_program(
                        self.graph.name, "compiled", done, elapsed,
                        program.op_class_counts,
                    )

    def set_register(self, name: str, value: float) -> None:
        """Set a loop-carried register by name *between* iterations.

        The host uses this to program initial conditions that are not
        compile-time constants (e.g. per-bunch injection offsets).
        """
        nid = self._phi_named.get(name)
        if nid is None:
            raise ExecutionError(f"no loop-carried register named {name!r}")
        if self._slots is not None:
            self._slots[nid] = self._ftype(value)
        else:
            self._registers[nid] = self._round(value)

    def register_of(self, name: str) -> float:
        """Read the current value of a named node (debug/monitoring).

        Looks up PHI registers first (the persistent state), then any
        named node's most recent value.
        """
        nid = self._phi_named.get(name)
        if nid is None:
            # First named node (graph insertion order) holding a value.
            if self._slots is not None:
                for candidate in self._named_order.get(name, ()):
                    if self._slots[candidate] is not None:
                        nid = candidate
                        break
            else:
                for candidate in self._named_order.get(name, ()):
                    if candidate in self._registers:
                        nid = candidate
                        break
        if nid is None:
            raise ExecutionError(f"no node named {name!r} with a value")
        if self._slots is not None:
            return float(self._slots[nid])
        return self._registers[nid]
