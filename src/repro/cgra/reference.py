"""Reference dataflow interpreter (the tool flow's golden model).

Evaluates a :class:`~repro.cgra.dfg.DataflowGraph` directly in forward
topological order, without scheduling, placement, routing or context
generation.  Because it shares none of the backend's machinery, it is
the differential-testing oracle: for any program and any fabric, the
cycle-accurate executor must produce exactly the values this
interpreter produces (same per-operation rounding mode), or the backend
has a bug.  `tests/properties/test_differential_execution.py` runs that
comparison over randomly generated kernels.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cgra.dfg import DataflowGraph
from repro.cgra.ops import Op
from repro.cgra.sensor import SensorBus
from repro.errors import ExecutionError

__all__ = ["ReferenceInterpreter"]


class ReferenceInterpreter:
    """Direct interpreter for one loop body, iteration by iteration.

    Parameters mirror :class:`~repro.cgra.executor.CgraExecutor` so the
    two can be driven identically.
    """

    def __init__(
        self,
        graph: DataflowGraph,
        bus: SensorBus,
        params: dict[str, float] | None = None,
        precision: str = "single",
    ) -> None:
        if precision not in ("single", "double"):
            raise ExecutionError(f"precision must be 'single' or 'double', got {precision!r}")
        graph.validate()
        self.graph = graph
        self.bus = bus
        self._ftype = np.float32 if precision == "single" else np.float64
        params = dict(params or {})
        missing = [p for p in graph.params if p not in params]
        if missing:
            raise ExecutionError(f"missing parameter values: {missing}")
        self._params = {k: self._round(v) for k, v in params.items()}

        self.registers: dict[int, float] = {}
        for node in graph.nodes.values():
            if node.op is Op.CONST:
                self.registers[node.node_id] = self._round(node.value)
            elif node.op is Op.PARAM:
                self.registers[node.node_id] = self._params[node.name]
            elif node.op is Op.PHI:
                init = (
                    self._params[node.init_param]
                    if node.init_param is not None
                    else self._round(node.init_value)
                )
                self.registers[node.node_id] = init
        self._order = [n for n in graph.topological_order() if not n.is_zero_time()]
        self.iterations = 0

    def _round(self, value: float) -> float:
        return float(self._ftype(value))

    def run_iteration(self) -> None:
        """Evaluate the body once and latch the loop-carried registers."""
        f = self._ftype
        regs = self.registers
        for node in self._order:
            if node.op is Op.SENSOR_READ:
                regs[node.node_id] = self._round(self.bus.read(node.sensor_id))
                continue
            if node.op is Op.SENSOR_READ_ADDR:
                addr = regs[node.operands[0]]
                regs[node.node_id] = self._round(self.bus.read_addr(node.sensor_id, addr))
                continue
            if node.op is Op.ACTUATOR_WRITE:
                self.bus.write(node.sensor_id, regs[node.operands[0]])
                regs[node.node_id] = 0.0
                continue
            args = [regs[o] for o in node.operands]
            with np.errstate(over="ignore", invalid="ignore"):
                if node.op is Op.FADD:
                    value = float(f(f(args[0]) + f(args[1])))
                elif node.op is Op.FSUB:
                    value = float(f(f(args[0]) - f(args[1])))
                elif node.op is Op.FMUL:
                    value = float(f(f(args[0]) * f(args[1])))
                elif node.op is Op.FDIV:
                    if args[1] == 0.0:
                        raise ExecutionError(f"division by zero in node {node.node_id}")
                    value = float(f(f(args[0]) / f(args[1])))
                elif node.op is Op.FSQRT:
                    if args[0] < 0.0:
                        raise ExecutionError(f"sqrt of negative in node {node.node_id}")
                    value = float(f(np.sqrt(f(args[0]))))
                elif node.op is Op.FNEG:
                    value = float(f(-f(args[0])))
                elif node.op is Op.FMIN:
                    value = float(f(min(args[0], args[1])))
                elif node.op is Op.FMAX:
                    value = float(f(max(args[0], args[1])))
                elif node.op is Op.CMP_LT:
                    value = 1.0 if args[0] < args[1] else 0.0
                elif node.op is Op.CMP_LE:
                    value = 1.0 if args[0] <= args[1] else 0.0
                elif node.op is Op.SELECT:
                    value = args[1] if args[0] != 0.0 else args[2]
                else:  # pragma: no cover - exhaustive over Op
                    raise ExecutionError(f"unhandled op {node.op}")
            if not math.isfinite(value):
                raise ExecutionError(
                    f"non-finite value in node {node.node_id} at iteration {self.iterations}"
                )
            regs[node.node_id] = value
        for phi in self.graph.phis():
            regs[phi.node_id] = regs[phi.back_edge]
        self.iterations += 1

    def run(self, n_iterations: int) -> None:
        """Evaluate ``n_iterations`` loop iterations."""
        if n_iterations < 0:
            raise ExecutionError("n_iterations must be non-negative")
        for _ in range(n_iterations):
            self.run_iteration()

    def register_of(self, name: str) -> float:
        """Value of a named PHI (or any named node)."""
        for phi in self.graph.phis():
            if phi.name == name:
                return self.registers[phi.node_id]
        for node in self.graph.nodes.values():
            if node.name == name and node.node_id in self.registers:
                return self.registers[node.node_id]
        raise ExecutionError(f"no node named {name!r} with a value")
