"""SensorAccess bus: the CGRA's window to the FPGA framework.

"To connect the CGRA to the simulator, a SensorAccess module was
implemented to act as memory.  This allows the simulation model to both
read input signal data and set the output timing for the next Gauss
pulse."

:class:`SensorBus` maps integer sensor/actuator ids to Python callables;
the HIL framework registers the period-length detector, the two ring
buffers and the Gauss-pulse actuator here, and the cycle-accurate
executor performs all its IO through this single port (which is also the
serialisation point the scheduler models).

Well-known ids used by the shipped beam model are module constants so
the C source, the framework wiring and the tests agree by construction.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import CgraError

_F64 = np.dtype(np.float64)

__all__ = [
    "SensorBus",
    "BatchSensorBus",
    "SENSOR_PERIOD",
    "SENSOR_REF_BUFFER",
    "SENSOR_GAP_BUFFER",
    "ACTUATOR_DELTA_T",
    "ACTUATOR_MONITOR",
]

#: Averaged revolution period of the reference signal, in seconds.
SENSOR_PERIOD = 0
#: Reference-signal ring buffer, addressed in (fractional) samples
#: relative to the last positive zero crossing.
SENSOR_REF_BUFFER = 1
#: Gap-signal ring buffer, addressed the same way.
SENSOR_GAP_BUFFER = 2
#: Δt output: arrival-time offset of bunch *k* — the framework adds the
#: bunch index to this base id, one actuator per simulated bunch.
ACTUATOR_DELTA_T = 16
#: Monitoring output (phase difference or mirrored signal).
ACTUATOR_MONITOR = 15


class SensorBus:
    """Id-addressed sensor/actuator registry.

    Reads are callables ``() -> float`` or ``(addr: float) -> float``
    (for addressed reads); writes are ``(value: float) -> None``.
    Unknown ids raise :class:`~repro.errors.CgraError` — an unmapped id in
    hardware would read undefined data, the model makes it loud.
    """

    def __init__(self) -> None:
        self._readers: dict[int, Callable[[], float]] = {}
        self._addr_readers: dict[int, Callable[[float], float]] = {}
        self._writers: dict[int, Callable[[float], None]] = {}
        #: Count of operations per id (IO-traffic statistics for E6/E7).
        self.read_counts: dict[int, int] = {}
        self.write_counts: dict[int, int] = {}

    def register_reader(self, sensor_id: int, fn: Callable[[], float]) -> None:
        """Register an address-less sensor."""
        self._readers[int(sensor_id)] = fn

    def register_addr_reader(self, sensor_id: int, fn: Callable[[float], float]) -> None:
        """Register an addressed sensor (ring-buffer port)."""
        self._addr_readers[int(sensor_id)] = fn

    def register_writer(self, actuator_id: int, fn: Callable[[float], None]) -> None:
        """Register an actuator."""
        self._writers[int(actuator_id)] = fn

    def read(self, sensor_id: int) -> float:
        """Perform an address-less read."""
        try:
            fn = self._readers[sensor_id]
        except KeyError:
            raise CgraError(f"no sensor registered for id {sensor_id}") from None
        self.read_counts[sensor_id] = self.read_counts.get(sensor_id, 0) + 1
        return float(fn())

    def read_addr(self, sensor_id: int, addr: float) -> float:
        """Perform an addressed read."""
        try:
            fn = self._addr_readers[sensor_id]
        except KeyError:
            raise CgraError(f"no addressed sensor registered for id {sensor_id}") from None
        self.read_counts[sensor_id] = self.read_counts.get(sensor_id, 0) + 1
        return float(fn(float(addr)))

    def write(self, actuator_id: int, value: float) -> None:
        """Perform an actuator write."""
        try:
            fn = self._writers[actuator_id]
        except KeyError:
            raise CgraError(f"no actuator registered for id {actuator_id}") from None
        self.write_counts[actuator_id] = self.write_counts.get(actuator_id, 0) + 1
        fn(float(value))


class BatchSensorBus:
    """Array-valued SensorAccess bus for the batched lockstep engine.

    Same registration API as :class:`SensorBus`, but each *logical* IO
    operation carries one value **per lane**: readers return a scalar
    (lane-uniform) or a length-``batch`` array, addressed readers receive
    a float64 ``[batch]`` address array, and writers receive a float64
    ``[batch]`` value array.  ``read_counts``/``write_counts`` count
    logical operations (one per op, not per lane), mirroring the scalar
    bus statistics.
    """

    def __init__(self, batch: int) -> None:
        if batch < 1:
            raise CgraError(f"batch must be >= 1, got {batch}")
        self.batch = int(batch)
        self._shape = (self.batch,)
        self._readers: dict[int, Callable] = {}
        self._addr_readers: dict[int, Callable] = {}
        self._writers: dict[int, Callable] = {}
        self.read_counts: dict[int, int] = {}
        self.write_counts: dict[int, int] = {}

    def register_reader(self, sensor_id: int, fn: Callable) -> None:
        """Register an address-less sensor (returns scalar or [batch])."""
        self._readers[int(sensor_id)] = fn

    def register_addr_reader(self, sensor_id: int, fn: Callable) -> None:
        """Register an addressed sensor (``[batch]`` addresses in)."""
        self._addr_readers[int(sensor_id)] = fn

    def register_writer(self, actuator_id: int, fn: Callable) -> None:
        """Register an actuator (receives ``[batch]`` values)."""
        self._writers[int(actuator_id)] = fn

    def _broadcast(self, value) -> np.ndarray:
        # Fast path for the common hot-loop case: the value is already a
        # float64 [batch] array — ``asarray`` would return it unchanged,
        # so skip the conversion/shape ceremony entirely.
        if (
            type(value) is np.ndarray
            and value.shape == self._shape
            and value.dtype == _F64
        ):
            return value
        arr = np.asarray(value, dtype=float)
        if arr.ndim == 0:
            return np.broadcast_to(arr, (self.batch,))
        if arr.shape != (self.batch,):
            raise CgraError(
                f"batched handler must return a scalar or shape ({self.batch},), "
                f"got shape {arr.shape}"
            )
        return arr

    def read(self, sensor_id: int) -> np.ndarray:
        """Perform an address-less read; returns float64 ``[batch]``."""
        try:
            fn = self._readers[sensor_id]
        except KeyError:
            raise CgraError(f"no sensor registered for id {sensor_id}") from None
        self.read_counts[sensor_id] = self.read_counts.get(sensor_id, 0) + 1
        return self._broadcast(fn())

    def read_addr(self, sensor_id: int, addr) -> np.ndarray:
        """Perform an addressed read; returns float64 ``[batch]``.

        The address is widened to float64 before the handler sees it,
        matching the scalar bus's ``float(addr)`` conversion per lane.
        """
        try:
            fn = self._addr_readers[sensor_id]
        except KeyError:
            raise CgraError(f"no addressed sensor registered for id {sensor_id}") from None
        self.read_counts[sensor_id] = self.read_counts.get(sensor_id, 0) + 1
        if (
            type(addr) is np.ndarray
            and addr.shape == self._shape
            and addr.dtype == _F64
        ):
            addresses = addr
        else:
            addresses = np.asarray(addr, dtype=float)
            if addresses.shape != self._shape:
                addresses = np.broadcast_to(addresses, self._shape)
        return self._broadcast(fn(addresses))

    def write(self, actuator_id: int, value) -> None:
        """Perform an actuator write (float64 ``[batch]`` values)."""
        try:
            fn = self._writers[actuator_id]
        except KeyError:
            raise CgraError(f"no actuator registered for id {actuator_id}") from None
        self.write_counts[actuator_id] = self.write_counts.get(actuator_id, 0) + 1
        fn(self._broadcast(value))
