"""The beam model in mini-C and its compilation pipeline.

:func:`beam_model_source` emits the C implementation of Section IV-B for
a configurable bunch count, with or without the manual factor-2 loop
pipelining.  :func:`compile_beam_model` runs the full paper tool flow —
parse → SCAR dataflow graph → list scheduler → context images — and
returns a :class:`CompiledModel` bundling everything the HIL framework
and the E6 benchmark need (schedule length, maximum real-time revolution
frequency, an executor factory).

Model structure per loop iteration (one revolution), following the paper
step by step:

1. read the averaged revolution time of the reference signal from the
   period-length detector;
2. from the previous iteration's γ_R, compute the revolution time the
   reference particle needs at its current energy; the difference ΔT to
   the measured period is the reference particle's arrival offset
   relative to the last positive zero crossing;
3. fetch the (scaled, interpolated) reference-buffer voltage at ΔT — the
   gap voltage acting on the reference particle (Eq. 2 input);
4. for every bunch *k*: fetch the gap-buffer voltage at
   ΔT + k·T_R/h + Δt_k (Eq. 3 input) and write Δt_k to the bunch's Gauss
   pulse actuator — all IO sits in the first pipeline stage, "which
   means that there is no additional delay induced by the loop
   pipelining";
5. (pipeline barrier — in the pipelined variant)
6. update γ_R (Eq. 2), Δγ_k (Eq. 3), η (Eq. 5) and Δt_k (Eq. 6).

Parameters (live-in, loaded by the host before the loop):

==============  =====================================================
``GAMMA_R0``    initial reference Lorentz factor (from the measured
                revolution frequency, Eq. 1)
``QMC2``        Q/(m c²) in 1/volt (Eq. 2 coefficient)
``L_R``         reference orbit length in metres
``ALPHA_C``     momentum compaction factor
``V_SCALE``     ADC volts → gap volts for the gap channel
``V_SCALE_REF`` ADC volts → effective gap volts for the reference
                channel (includes the harmonic factor: the reference
                sine runs at f_R, not h·f_R)
``F_SAMPLE``    ring-buffer sample rate in Hz
``H_INV``       1/h (bunch spacing in revolutions)
==============  =====================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cgra.context import ContextImage, build_context_images
from repro.cgra.dfg import DataflowGraph
from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.scheduler import ListScheduler, Schedule
from repro.cgra.sensor import (
    ACTUATOR_DELTA_T,
    ACTUATOR_MONITOR,
    SENSOR_GAP_BUFFER,
    SENSOR_PERIOD,
    SENSOR_REF_BUFFER,
)
from repro.cgra.timing import max_revolution_frequency
from repro.errors import ConfigurationError
from repro.obs import get_registry
from repro.obs._state import STATE as _OBS

__all__ = [
    "beam_model_source",
    "monitor_model_source",
    "CompiledModel",
    "compile_beam_model",
    "compile_monitor_model",
    "clear_cache",
]

_CACHE_HITS = get_registry().counter(
    "cgra_compile_cache_hits_total", "beam-model tool-flow runs served from the compile cache"
)
_CACHE_MISSES = get_registry().counter(
    "cgra_compile_cache_misses_total", "beam-model tool-flow runs that ran the full pipeline"
)

#: Speed of light, spelled in the C source as a literal.
_C0 = 299_792_458.0


def beam_model_source(n_bunches: int = 8, pipelined: bool = True) -> str:
    """Emit the mini-C beam model for ``n_bunches``, optionally pipelined."""
    if n_bunches < 1:
        raise ConfigurationError(f"n_bunches must be >= 1, got {n_bunches}")
    barrier = "        pipeline_barrier();\n" if pipelined else ""
    return f"""\
// Longitudinal beam model, Section IV-B ("Cavity in the Loop", SC 2024).
// {n_bunches} bunch(es), manual loop pipelining {'ON' if pipelined else 'OFF'}.
#define S_PERIOD {SENSOR_PERIOD}
#define S_REFBUF {SENSOR_REF_BUFFER}
#define S_GAPBUF {SENSOR_GAP_BUFFER}
#define A_DELTA_T {ACTUATOR_DELTA_T}
#define N_BUNCHES {n_bunches}
#define C0 {_C0!r}

void beam_model(float GAMMA_R0, float QMC2, float L_R, float ALPHA_C,
                float V_SCALE, float V_SCALE_REF, float F_SAMPLE, float H_INV) {{
    float gamma_r = GAMMA_R0;
    float dgamma[N_BUNCHES] = 0.0;
    float dt[N_BUNCHES] = 0.0;
    while (1) {{
        /* ---- stage 1: sensing and IO ---- */
        float t_meas = read_sensor(S_PERIOD);
        float inv_g2 = 1.0 / (gamma_r * gamma_r);
        float beta_r = sqrt(1.0 - inv_g2);
        float t_ref = L_R / (beta_r * C0);
        float dT = t_ref - t_meas;
        float v_r = read_sensor2(S_REFBUF, dT * F_SAMPLE) * V_SCALE_REF;
        float spacing = t_meas * H_INV;
        float v_a[N_BUNCHES] = 0.0;
        for (int i = 0; i < N_BUNCHES; i = i + 1) {{
            v_a[i] = read_sensor2(S_GAPBUF, (dT + spacing * i + dt[i]) * F_SAMPLE) * V_SCALE;
            write_actuator(A_DELTA_T + i, dt[i]);
        }}
{barrier}        /* ---- stage 2: tracking equations ---- */
        gamma_r = gamma_r + QMC2 * v_r;                    /* Eq. 2 */
        float inv_g2n = 1.0 / (gamma_r * gamma_r);
        float eta = ALPHA_C - inv_g2n;                     /* Eq. 5 */
        float beta_r2 = 1.0 - inv_g2n;
        float k_dt = L_R * eta / (beta_r2 * C0 * gamma_r);
        for (int i = 0; i < N_BUNCHES; i = i + 1) {{
            dgamma[i] = dgamma[i] + QMC2 * (v_a[i] - v_r); /* Eq. 3 */
            float gamma_a = gamma_r + dgamma[i];
            float beta_a = sqrt(1.0 - 1.0 / (gamma_a * gamma_a));
            dt[i] = dt[i] + k_dt * dgamma[i] / beta_a;     /* Eq. 6 */
        }}
    }}
}}
"""


def monitor_model_source() -> str:
    """Emit the mini-C beam *phase-monitor* kernel.

    A diagnostics companion to the beam model: every revolution it reads
    the measured period and derives the reference particle's kinematic
    state — Lorentz factors, slip factor η (Eq. 5), synchrotron-scaled
    phase error and a smoothed, clamped monitor value — and publishes the
    result on the monitor actuator.  Unlike the beam model it carries
    **no** state across revolutions: every quantity is recomputed from
    the current period sample, so the dependence analysis certifies the
    whole loop body as one chunkable segment (the vector tier's best
    case, and the stock schedule used to benchmark it).
    """
    return f"""\
// Beam phase monitor: per-revolution kinematics diagnostics.
// Feed-forward (no loop-carried state) — fully vector-chunkable.
#define S_PERIOD {SENSOR_PERIOD}
#define A_MONITOR {ACTUATOR_MONITOR}
#define C0 {_C0!r}

void monitor_model(float GAMMA_R0, float L_R, float ALPHA_C, float F_SYNC,
                   float T_NOM, float K_SMOOTH, float LIMIT) {{
    while (1) {{
        /* measured revolution period and deviation from nominal */
        float t_meas = read_sensor(S_PERIOD);
        float dt_rel = (t_meas - T_NOM) / T_NOM;
        /* reference kinematics at the programmed energy */
        float inv_g2 = 1.0 / (GAMMA_R0 * GAMMA_R0);
        float beta_r = sqrt(1.0 - inv_g2);
        float t_ref = L_R / (beta_r * C0);
        float eta = ALPHA_C - inv_g2;                       /* Eq. 5 */
        /* momentum offset implied by the period deviation */
        float dp_rel = dt_rel / eta;
        float gamma_m = GAMMA_R0 * (1.0 + dp_rel * beta_r * beta_r);
        float inv_gm2 = 1.0 / (gamma_m * gamma_m);
        float beta_m = sqrt(1.0 - inv_gm2);
        float eta_m = ALPHA_C - inv_gm2;
        /* synchrotron-scaled phase error of this revolution */
        float phase = (t_meas - t_ref) * F_SYNC;
        float phase2 = phase * phase;
        /* odd smoothing polynomial: x - x^3/6 + x^5/120 (sin series) */
        float p3 = phase * phase2;
        float p5 = p3 * phase2;
        float smooth = phase - p3 / 6.0 + p5 / 120.0;
        /* blend kinematic and phase channels, clamp to the DAC window */
        float drift = dp_rel * eta_m / (beta_m + beta_r);
        float blended = smooth * K_SMOOTH + drift * (1.0 - K_SMOOTH);
        float limited = fmax(-LIMIT, fmin(LIMIT, blended));
        float monitor = limited * beta_m / beta_r;
        write_actuator(A_MONITOR, monitor);
    }}
}}
"""


@dataclass
class CompiledModel:
    """Everything produced by one run of the CGRA tool flow."""

    source: str
    n_bunches: int
    pipelined: bool
    graph: DataflowGraph
    schedule: Schedule
    images: dict[tuple[int, int], ContextImage]
    config: CgraConfig
    #: Wall-clock seconds the flow took (the "reconfiguration in seconds"
    #: claim of the paper, measured for E8).
    compile_seconds: float

    @property
    def schedule_length(self) -> int:
        """Ticks per revolution iteration."""
        return self.schedule.length

    @property
    def max_f_rev(self) -> float:
        """Highest real-time revolution frequency for this schedule."""
        from repro.cgra.timing import ClockDomain

        return max_revolution_frequency(
            self.schedule_length, ClockDomain("cgra", self.config.clock_mhz * 1e6)
        )

    def default_params(
        self,
        gamma_r0: float,
        q_over_mc2: float,
        orbit_length: float,
        alpha_c: float,
        v_scale: float,
        v_scale_ref: float,
        f_sample: float,
        harmonic: int,
    ) -> dict[str, float]:
        """Assemble the live-in parameter dictionary for the executor."""
        return {
            "GAMMA_R0": gamma_r0,
            "QMC2": q_over_mc2,
            "L_R": orbit_length,
            "ALPHA_C": alpha_c,
            "V_SCALE": v_scale,
            "V_SCALE_REF": v_scale_ref,
            "F_SAMPLE": f_sample,
            "H_INV": 1.0 / harmonic,
        }


#: Keyed compile cache: (source text, fabric config) → CompiledModel.
#:
#: **Multiprocess safety**: the cache is strictly per-process — a plain
#: dict with no lock and no shared memory.  Worker processes of
#: :mod:`repro.parallel` each hold their own copy: ``fork`` children
#: inherit the parent's primed entries at fork time (free warm start);
#: ``spawn`` children start empty and are primed by the pool's worker
#: initializer.  Never ship a :class:`CompiledModel` (or its schedule /
#: executor) across process boundaries to "share" the cache — workers
#: must return plain result data and let each process compile through
#: its own cache (``repro.parallel.pool._guard_value`` enforces this on
#: worker returns).
_MODEL_CACHE: dict[tuple[str, CgraConfig], CompiledModel] = {}


def compile_beam_model(
    n_bunches: int = 8,
    pipelined: bool = True,
    config: CgraConfig | None = None,
    use_cache: bool = True,
) -> CompiledModel:
    """Run the full tool flow for the beam model.

    This is the operation whose turnaround the paper praises ("changes to
    the C implementation are available on the experimental setup in
    seconds"); its wall-clock duration is recorded in
    :attr:`CompiledModel.compile_seconds`.

    Repeated calls with the same source and fabric config are served
    from a process-wide cache (the returned :class:`CompiledModel` is
    shared, with the original ``compile_seconds``).  Pass
    ``use_cache=False`` to force a fresh pipeline run — experiments that
    *measure* the tool-flow turnaround, or tests that mutate the
    returned model, need an uncached instance.
    """
    config = config if config is not None else CgraConfig()
    source = beam_model_source(n_bunches=n_bunches, pipelined=pipelined)
    key = (source, config)
    if use_cache:
        cached = _MODEL_CACHE.get(key)
        if cached is not None:
            if _OBS.enabled:
                _CACHE_HITS.inc()
            return cached
    t0 = time.perf_counter()
    graph = compile_c_to_dfg(source)
    fabric = CgraFabric(config)
    schedule = ListScheduler(fabric).schedule(graph)
    images = build_context_images(schedule)
    elapsed = time.perf_counter() - t0
    model = CompiledModel(
        source=source,
        n_bunches=n_bunches,
        pipelined=pipelined,
        graph=graph,
        schedule=schedule,
        images=images,
        config=config,
        compile_seconds=elapsed,
    )
    if use_cache:
        if _OBS.enabled:
            _CACHE_MISSES.inc()
        _MODEL_CACHE[key] = model
    return model


def compile_monitor_model(
    config: CgraConfig | None = None,
    use_cache: bool = True,
) -> CompiledModel:
    """Run the full tool flow for the phase-monitor kernel.

    Same pipeline and per-process cache as :func:`compile_beam_model`;
    the returned :class:`CompiledModel` has ``n_bunches=1`` (the monitor
    observes the reference particle only) and is never pipelined (the
    loop body is a single feed-forward stage).
    """
    config = config if config is not None else CgraConfig()
    source = monitor_model_source()
    key = (source, config)
    if use_cache:
        cached = _MODEL_CACHE.get(key)
        if cached is not None:
            if _OBS.enabled:
                _CACHE_HITS.inc()
            return cached
    t0 = time.perf_counter()
    graph = compile_c_to_dfg(source)
    fabric = CgraFabric(config)
    schedule = ListScheduler(fabric).schedule(graph)
    images = build_context_images(schedule)
    elapsed = time.perf_counter() - t0
    model = CompiledModel(
        source=source,
        n_bunches=1,
        pipelined=False,
        graph=graph,
        schedule=schedule,
        images=images,
        config=config,
        compile_seconds=elapsed,
    )
    if use_cache:
        if _OBS.enabled:
            _CACHE_MISSES.inc()
        _MODEL_CACHE[key] = model
    return model


def clear_cache() -> None:
    """Drop all cached compiled models, compiled engine programs, fused
    vector chunk kernels and autotune execution plans."""
    from repro.cgra.autotune import clear_plan_cache
    from repro.cgra.engine import clear_program_cache
    from repro.cgra.engine_vector import clear_kernel_cache

    _MODEL_CACHE.clear()
    clear_program_cache()
    clear_kernel_cache()
    clear_plan_cache()
