"""Adaptive engine planning: the ``engine="auto"`` execution tier.

The fastest execution tier is workload-dependent: the certificate-driven
vector tier is a ~4.5x win on the fully chunkable monitor kernel but a
*regression* on the beam kernel, whose sequential segments (32.5 % of
the ops are chunkable) run per-iteration Python with vector indexing —
slower than the flat compiled step.  Which side of that trade a kernel
lands on depends on the certificate (chunkable fraction, op mix), the
batch width, the run horizon *and* the machine (NumPy per-call overhead
versus per-element throughput).

This module turns the manual ``--engine`` choice into a measured
decision:

* :func:`calibrate` runs a one-shot on-machine probe (a few
  milliseconds, cached per process) producing a :class:`MachineProfile`
  — scalar-op cost, NumPy array-call overhead, per-element throughput
  and the preferred chunk element budget;
* :func:`plan_for` combines that profile with the program's
  :class:`~repro.cgra.verify.dependence.VectorizationCertificate`
  statistics in a static cost model and returns an
  :class:`ExecutionPlan` (engine + chunk size), **falling back to
  ``"compiled"`` whenever the predicted vector win is below the
  uncertainty margin**, the horizon is too short for chunking, or the
  vector lowering rejects the program;
* decisions are memoised in a keyed plan cache
  (``autotune_plan_cache_{hits,misses}_total`` counters,
  dropped by :func:`repro.cgra.clear_cache`) whose keys are
  *content-stable* — a hash of the generated program source, never an
  ``id()`` — so :func:`export_plans`/:func:`import_plans` can ship the
  parent's decisions to :mod:`repro.parallel` workers and every shard
  plans identically.

Selection never changes results — every tier is bit-exact — only speed;
``plan_for`` is a pure function of ``(profile, certificate, batch,
horizon)``, which the determinism tests pin by injecting a fixed
profile.  Set ``REPRO_AUTOTUNE=0`` to skip the measurement probe and
plan from conservative defaults (identical behaviour to the static
``MAX_CHUNK`` heuristic).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.obs import get_registry
from repro.obs._state import STATE as _OBS

__all__ = [
    "MachineProfile",
    "ExecutionPlan",
    "calibrate",
    "chunk_elems_hint",
    "plan_for",
    "program_key",
    "plan_cache_stats",
    "clear_plan_cache",
    "export_plans",
    "import_plans",
]

_PLAN_HITS = get_registry().counter(
    "autotune_plan_cache_hits_total", "engine plans served from the plan cache"
)
_PLAN_MISSES = get_registry().counter(
    "autotune_plan_cache_misses_total", "engine plans computed by the cost model"
)

#: Horizons below this many iterations never plan "vector": the chunk
#: path needs several MIN_CHUNK-sized chunks to amortise its setup.
HORIZON_MIN = 32
#: Predicted vector cost must undercut compiled by this factor before
#: "auto" selects it — when uncertain, fall back to compiled.
MARGIN = 0.9
#: Sequential-segment ops inside the vector tier pay chunk-vector
#: indexing on top of the scalar op; calibrated probes put the factor
#: between 1.3 and 2.0 — the model uses a fixed mid estimate so plans
#: stay deterministic for a given profile.
SEQ_INDEX_OPS = 1.5

#: Sizes probed for the preferred chunk element budget.
_CHUNK_CANDIDATES = (8192, 16384, 32768, 65536)


@dataclass(frozen=True)
class MachineProfile:
    """One machine's measured execution-cost parameters (nanoseconds).

    ``plan_for`` is a pure function of this profile plus static program
    facts; tests inject fixed profiles to pin decisions.
    """

    #: One NumPy scalar binary op, Python dispatch included.
    scalar_op_ns: float
    #: Fixed per-call overhead of one NumPy array op.
    array_op_ns: float
    #: Marginal per-element cost of one NumPy array op.
    array_elem_ns: float
    #: One Python function call (bus-handler dispatch unit).
    call_ns: float
    #: Preferred elements per vector chunk ([B] * T budget).
    chunk_elems: int

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MachineProfile":
        return cls(
            scalar_op_ns=float(data["scalar_op_ns"]),
            array_op_ns=float(data["array_op_ns"]),
            array_elem_ns=float(data["array_elem_ns"]),
            call_ns=float(data["call_ns"]),
            chunk_elems=int(data["chunk_elems"]),
        )


#: Used when calibration is disabled (``REPRO_AUTOTUNE=0``) or fails:
#: representative of a mid-range x86 core, with the historical static
#: chunk budget so behaviour degrades to the pre-autotune heuristic.
DEFAULT_PROFILE = MachineProfile(
    scalar_op_ns=400.0,
    array_op_ns=450.0,
    array_elem_ns=1.0,
    call_ns=80.0,
    chunk_elems=32768,
)

_PROFILE: MachineProfile | None = None


def _best_of(probe, repeats: int = 3) -> float:
    """Minimum of ``repeats`` timings — the least-interfered sample."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        probe()
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate(force: bool = False) -> MachineProfile:
    """Measure this machine's profile (one-shot, cached per process).

    The whole probe costs a few milliseconds; ``REPRO_AUTOTUNE=0``
    skips it and returns :data:`DEFAULT_PROFILE`.
    """
    global _PROFILE
    if _PROFILE is not None and not force:
        return _PROFILE
    if os.environ.get("REPRO_AUTOTUNE", "1") == "0":
        _PROFILE = DEFAULT_PROFILE
        return _PROFILE

    n = 512
    a32 = np.float32(1.1)
    b32 = np.float32(0.9)

    def scalar_probe() -> None:
        x = a32
        for _ in range(n):
            x = x * b32

    small = np.linspace(0.5, 1.5, 64, dtype=np.float32)
    big = np.linspace(0.5, 1.5, 16384, dtype=np.float32)

    def array_probe(arr):
        def run() -> None:
            for _ in range(64):
                np.multiply(arr, np.float32(0.999))
        return run

    def call_probe() -> None:
        fn = float
        for _ in range(n):
            fn(1)

    scalar_op = _best_of(scalar_probe) / n * 1e9
    t_small = _best_of(array_probe(small)) / 64
    t_big = _best_of(array_probe(big)) / 64
    elem = max(0.01, (t_big - t_small) / (big.size - small.size) * 1e9)
    fixed = max(10.0, t_small * 1e9 - small.size * elem)
    call = _best_of(call_probe) / n * 1e9

    # Preferred chunk budget: smallest candidate whose per-element cost
    # is within 10 % of the best — larger chunks buy nothing but memory.
    per_elem: list[tuple[int, float]] = []
    for size in _CHUNK_CANDIDATES:
        arr = np.linspace(0.5, 1.5, size, dtype=np.float32)
        t = _best_of(array_probe(arr), repeats=2) / 64
        per_elem.append((size, t / size))
    best = min(c for _s, c in per_elem)
    chunk_elems = next(s for s, c in per_elem if c <= 1.1 * best)

    _PROFILE = MachineProfile(
        scalar_op_ns=scalar_op,
        array_op_ns=fixed,
        array_elem_ns=elem,
        call_ns=call,
        chunk_elems=chunk_elems,
    )
    return _PROFILE


def chunk_elems_hint() -> int:
    """The calibrated chunk element budget (vector tier chunk sizing)."""
    return calibrate().chunk_elems


@dataclass(frozen=True)
class ExecutionPlan:
    """One planning decision for (program, batch, horizon bucket)."""

    #: The tier to run: ``"compiled"`` or ``"vector"``.
    engine: str
    #: Chunk element budget for the vector tier (profile-calibrated).
    chunk_elems: int
    #: Why this tier was chosen (cost-model trace, human-readable).
    reason: str
    #: Predicted per-iteration cost of each tier, nanoseconds.
    predicted_compiled_ns: float = 0.0
    predicted_vector_ns: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionPlan":
        return cls(
            engine=str(data["engine"]),
            chunk_elems=int(data["chunk_elems"]),
            reason=str(data["reason"]),
            predicted_compiled_ns=float(data.get("predicted_compiled_ns", 0.0)),
            predicted_vector_ns=float(data.get("predicted_vector_ns", 0.0)),
        )


#: (program key, batch, horizon bucket) → ExecutionPlan.  Content-keyed,
#: so identical programs plan identically in every process.
_PLAN_CACHE: dict[tuple[str, int, int], ExecutionPlan] = {}


def program_key(program) -> str:
    """Content-stable identity of a compiled program.

    Hashes the generated step source (which encodes the merged schedule,
    operand resolution and op order) plus name and precision — equal
    across processes for equal programs, unlike the engine's
    ``id()``-keyed program cache.
    """
    h = hashlib.sha1()
    h.update(program.graph.name.encode())
    h.update(program.precision.encode())
    h.update(program.source_fast.encode())
    return h.hexdigest()


def _horizon_bucket(horizon: int | None) -> int:
    """Power-of-two horizon bucket: plans are reused across nearby
    horizons instead of being recomputed per exact iteration count."""
    if horizon is None:
        return -1
    return max(0, int(horizon)).bit_length()


def _op_census(program) -> tuple[int, int, int]:
    """(chunkable arith ops, sequential arith ops, io ops per iteration)."""
    from repro.cgra.ops import Op

    chunkable = set(program.certificate.certified_node_ids())
    arith_chunk = arith_seq = io = 0
    for _tick, op, nid, _ops, _io in program.entries:
        if op in (Op.SENSOR_READ, Op.SENSOR_READ_ADDR, Op.ACTUATOR_WRITE):
            io += 1
        elif nid in chunkable:
            arith_chunk += 1
        else:
            arith_seq += 1
    return arith_chunk, arith_seq, io


def _model_costs(
    program, batch: int, profile: MachineProfile
) -> tuple[float, float]:
    """Predicted per-iteration cost (ns) of the compiled and vector tiers.

    IO handler calls run per iteration in *both* tiers (the vector
    prologue/commit preserve the per-iteration call stream), so they
    appear symmetrically and the comparison is decided by the arithmetic.
    """
    s = profile.scalar_op_ns
    a = profile.array_op_ns
    e = profile.array_elem_ns
    c = profile.call_ns
    arith_chunk, arith_seq, io = _op_census(program)
    batched_op = a + batch * e

    io_cost = io * (c * 4 + (batched_op if batch > 1 else 0.0))
    if batch > 1:
        compiled_op = batched_op
    else:
        compiled_op = s
    compiled = (arith_chunk + arith_seq) * compiled_op + io_cost

    chunk_t = max(8, profile.chunk_elems // max(1, batch))
    chunk_op = batch * e + a / chunk_t
    seq_op = compiled_op + SEQ_INDEX_OPS * a
    vector = arith_chunk * chunk_op + arith_seq * seq_op + io_cost
    return compiled, vector


def plan_for(
    program,
    batch: int = 1,
    horizon: int | None = None,
    profile: MachineProfile | None = None,
) -> ExecutionPlan:
    """Plan the execution tier for one (program, batch, horizon).

    Pure function of ``(profile, certificate, batch, horizon bucket)``;
    with ``profile=None`` the process's calibrated profile is used and
    the decision is memoised in the keyed plan cache.  An explicitly
    passed profile bypasses the cache (the determinism tests' seam).
    """
    key = (program_key(program), int(batch), _horizon_bucket(horizon))
    if profile is None:
        cached = _PLAN_CACHE.get(key)
        if cached is not None:
            if _OBS.enabled:
                _PLAN_HITS.inc()
            return cached
        if _OBS.enabled:
            _PLAN_MISSES.inc()
        active = calibrate()
    else:
        active = profile

    compiled_ns, vector_ns = _model_costs(program, batch, active)

    def decide() -> tuple[str, str]:
        if horizon is not None and horizon < HORIZON_MIN:
            return "compiled", f"horizon {horizon} < {HORIZON_MIN} (chunking cannot amortise)"
        if vector_ns >= MARGIN * compiled_ns:
            return "compiled", (
                f"cost model: vector {vector_ns:.0f} ns/iter vs compiled "
                f"{compiled_ns:.0f} ns/iter (margin {MARGIN})"
            )
        # Only pay for the vector lowering once the model predicts a win.
        from repro.cgra.engine_vector import get_vector_program

        vp = get_vector_program(program)
        if not vp.ok:
            return "compiled", f"vector lowering rejected: {vp.reason}"
        return "vector", (
            f"cost model: vector {vector_ns:.0f} ns/iter beats compiled "
            f"{compiled_ns:.0f} ns/iter"
        )

    engine, reason = decide()
    plan = ExecutionPlan(
        engine=engine,
        chunk_elems=active.chunk_elems,
        reason=reason,
        predicted_compiled_ns=compiled_ns,
        predicted_vector_ns=vector_ns,
    )
    if profile is None:
        _PLAN_CACHE[key] = plan
    return plan


def plan_cache_stats() -> dict[str, int]:
    """Size of the plan cache (counters live in the obs registry)."""
    return {"plans": len(_PLAN_CACHE)}


def clear_plan_cache() -> None:
    """Drop all memoised plans and the calibrated profile."""
    global _PROFILE
    _PLAN_CACHE.clear()
    _PROFILE = None


def export_plans() -> dict:
    """Snapshot the calibrated profile + plan cache as plain data.

    Shipped to :mod:`repro.parallel` workers at pool start so every
    shard makes the parent's decisions (same engine, same chunk size)
    without re-running the probe.
    """
    return {
        "profile": _PROFILE.to_dict() if _PROFILE is not None else None,
        "plans": {key: plan.to_dict() for key, plan in _PLAN_CACHE.items()},
    }


def import_plans(bundle: dict | None) -> None:
    """Adopt a parent process's exported profile and plans."""
    global _PROFILE
    if not bundle:
        return
    profile = bundle.get("profile")
    if profile is not None:
        _PROFILE = MachineProfile.from_dict(profile)
    for key, plan in bundle.get("plans", {}).items():
        _PLAN_CACHE[tuple(key)] = ExecutionPlan.from_dict(plan)
