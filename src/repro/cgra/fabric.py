"""Processing-element fabric and configurable interconnect.

"CGRAs ... consist of Processing Elements (PEs), where each PE can have
its own set of operators ... Each PE is connected to its surrounding
neighbours through a configurable interconnect.  Results of operations
can be passed on, allowing the routing of operands where no direct
connection exists.  The framework design ... is agnostic to the CGRA
configuration, allowing an arbitrary number of PEs (e.g. 3x3 or 5x5) and
any interconnect structure."

:class:`CgraFabric` models an R×C grid (optionally a torus) with
4-neighbour links by default; arbitrary extra links can be added, and
per-PE operator subsets express heterogeneous fabrics (e.g. only some
PEs carry the expensive sqrt/div cores, one PE owns the SensorAccess
port).  Routing distances come from shortest paths on the interconnect
graph (networkx), at :attr:`~repro.cgra.ops.OperatorLatencies.route_hop`
ticks per hop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import networkx as nx

from repro.cgra.ops import IO_OPS, ZERO_TIME_OPS, Op, OperatorLatencies
from repro.errors import ConfigurationError, ScheduleError

__all__ = ["CgraConfig", "CgraFabric"]


#: Operator classes a default PE supports (everything but IO and the
#: expensive iterative cores).
_BASIC_OPS = frozenset(
    {Op.FADD, Op.FSUB, Op.FMUL, Op.FNEG, Op.FMIN, Op.FMAX, Op.CMP_LT, Op.CMP_LE, Op.SELECT}
)
_HEAVY_OPS = frozenset({Op.FDIV, Op.FSQRT})


@dataclass(frozen=True)
class CgraConfig:
    """Static configuration of a CGRA instance.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (the paper mentions 3×3 and 5×5 as examples).
    clock_mhz:
        Overlay clock; 111 MHz in the paper ("we cannot use the system
        clock of 250 MHz for our CGRA").
    latencies:
        Operator latencies.
    torus:
        Wrap the grid edges (richer interconnect).
    heavy_pe_fraction:
        Fraction of PEs equipped with FDIV/FSQRT cores (they are large on
        an FPGA, so not every PE carries them).  At least one PE is
        always equipped.
    io_pe:
        Grid position of the PE wired to the SensorAccess module; defaults
        to (0, 0).
    context_slots:
        Depth of each PE's context memory — the hard limit on how many
        operations one PE can hold per loop iteration.  The scheduler
        rejects programs that overflow it ("the contents for all context
        memories" must fit the memories).
    """

    rows: int = 5
    cols: int = 5
    clock_mhz: float = 111.0
    latencies: OperatorLatencies = field(default_factory=OperatorLatencies)
    torus: bool = False
    heavy_pe_fraction: float = 0.5
    io_pe: tuple[int, int] = (0, 0)
    context_slots: int = 64

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("fabric needs at least one PE")
        if self.clock_mhz <= 0.0:
            raise ConfigurationError("clock must be positive")
        if not 0.0 < self.heavy_pe_fraction <= 1.0:
            raise ConfigurationError("heavy_pe_fraction must be in (0, 1]")
        r, c = self.io_pe
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ConfigurationError(f"io_pe {self.io_pe} outside the grid")
        if self.context_slots < 1:
            raise ConfigurationError("context_slots must be >= 1")

    @property
    def n_pes(self) -> int:
        """Total number of processing elements."""
        return self.rows * self.cols

    @property
    def clock_period_s(self) -> float:
        """One CGRA tick in seconds."""
        return 1.0 / (self.clock_mhz * 1e6)


class CgraFabric:
    """A concrete fabric instance: PE capability map + interconnect graph."""

    def __init__(self, config: CgraConfig) -> None:
        self.config = config
        self.graph = nx.Graph()
        positions = list(itertools.product(range(config.rows), range(config.cols)))
        self.graph.add_nodes_from(positions)
        for r, c in positions:
            if r + 1 < config.rows:
                self.graph.add_edge((r, c), (r + 1, c))
            elif config.torus and config.rows > 2:
                self.graph.add_edge((r, c), (0, c))
            if c + 1 < config.cols:
                self.graph.add_edge((r, c), (r, c + 1))
            elif config.torus and config.cols > 2:
                self.graph.add_edge((r, c), (r, 0))

        # Capability map: every PE does the basic ops; heavy cores are
        # distributed evenly (stride placement keeps them spread out);
        # exactly one PE owns the SensorAccess port.
        self.capabilities: dict[tuple[int, int], set[Op]] = {
            pe: set(_BASIC_OPS) | set(ZERO_TIME_OPS) for pe in positions
        }
        n_heavy = max(1, round(config.heavy_pe_fraction * len(positions)))
        stride = max(1, len(positions) // n_heavy)
        heavy = positions[::stride][:n_heavy]
        for pe in heavy:
            self.capabilities[pe] |= _HEAVY_OPS
        self.capabilities[config.io_pe] |= set(IO_OPS)
        self._heavy_pes = set(heavy)
        self._distance = dict(nx.all_pairs_shortest_path_length(self.graph))

    @property
    def pes(self) -> list[tuple[int, int]]:
        """All PE positions, row-major."""
        return sorted(self.graph.nodes)

    @property
    def heavy_pes(self) -> set[tuple[int, int]]:
        """PEs carrying div/sqrt cores."""
        return set(self._heavy_pes)

    @property
    def io_pe(self) -> tuple[int, int]:
        """The PE wired to the SensorAccess module."""
        return self.config.io_pe

    def add_link(self, a: tuple[int, int], b: tuple[int, int]) -> None:
        """Add an extra interconnect link (configurable interconnect)."""
        if a not in self.graph or b not in self.graph:
            raise ConfigurationError(f"link endpoints {a}, {b} must be PEs")
        self.graph.add_edge(a, b)
        self._distance = dict(nx.all_pairs_shortest_path_length(self.graph))

    def supports(self, pe: tuple[int, int], op: Op) -> bool:
        """Whether a PE can execute an operation."""
        return op in self.capabilities[pe]

    def candidates(self, op: Op) -> list[tuple[int, int]]:
        """All PEs able to execute ``op`` (row-major order)."""
        found = [pe for pe in self.pes if op in self.capabilities[pe]]
        if not found:
            raise ScheduleError(f"no PE supports {op}")
        return found

    def hop_distance(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """Shortest-path hop count between two PEs."""
        try:
            return self._distance[a][b]
        except KeyError:
            raise ScheduleError(f"no route between {a} and {b}") from None

    def routing_delay(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """Ticks needed to move a value from PE ``a`` to PE ``b``."""
        return self.hop_distance(a, b) * self.config.latencies.route_hop
