"""Clock domains and the real-time capacity derivation.

The paper's real-time argument: one model iteration must complete within
one revolution period.  "The CGRA uses its own clock running at 111 MHz
... we can simulate particles with revolution frequencies of up to 1 MHz
due to our loop pipelining instead of the ≈ 867 kHz without loop
pipelining. ... By simulating only four bunches, we shrink down the
length of our schedule to a total of 99 clock ticks.  And if only a
single bunch is simulated, the schedule length is even further reduced
to 93 clock ticks.  Doing so allows us to simulate particles with
revolution frequencies of ≈ 1.12 MHz or ... ≈ 1.19 MHz respectively."

That is simply ``f_rev_max = f_CGRA / schedule_length``; this module
computes it and models the two clock domains of the design (250 MHz
system / 111 MHz CGRA).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, RealTimeViolation

__all__ = ["ClockDomain", "max_revolution_frequency", "ticks_available", "check_deadline"]


@dataclass(frozen=True)
class ClockDomain:
    """A clock with a name and frequency."""

    name: str
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise ConfigurationError(f"clock {self.name!r} must have positive frequency")

    @property
    def period_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency_hz

    def ticks_in(self, duration_s: float) -> float:
        """Number of (fractional) ticks in a time span."""
        return duration_s * self.frequency_hz


#: The framework's 250 MHz system/sample clock.
SYSTEM_CLOCK = ClockDomain("system", 250e6)
#: The CGRA overlay clock (timing closure limited it to 111 MHz).
CGRA_CLOCK = ClockDomain("cgra", 111e6)


def max_revolution_frequency(schedule_length_ticks: int, cgra_clock: ClockDomain = CGRA_CLOCK) -> float:
    """Highest revolution frequency a schedule can serve in real time.

    One iteration (``schedule_length_ticks``) must fit into one
    revolution period: f_rev_max = f_CGRA / length.
    """
    if schedule_length_ticks <= 0:
        raise ConfigurationError("schedule length must be positive")
    return cgra_clock.frequency_hz / schedule_length_ticks


def ticks_available(f_rev: float, cgra_clock: ClockDomain = CGRA_CLOCK) -> float:
    """CGRA ticks available per revolution at revolution frequency ``f_rev``."""
    if f_rev <= 0.0:
        raise ConfigurationError("revolution frequency must be positive")
    return cgra_clock.frequency_hz / f_rev


def check_deadline(
    schedule_length_ticks: int,
    f_rev: float,
    cgra_clock: ClockDomain = CGRA_CLOCK,
    raise_on_miss: bool = True,
) -> float:
    """Slack in ticks for one iteration at revolution frequency ``f_rev``.

    Positive slack means the deadline is met.  With ``raise_on_miss``
    (default) a negative slack raises
    :class:`~repro.errors.RealTimeViolation` — the HIL bench refuses to
    pretend it is real-time capable when it is not.
    """
    slack = ticks_available(f_rev, cgra_clock) - schedule_length_ticks
    if slack < 0.0 and raise_on_miss:
        raise RealTimeViolation(
            f"schedule of {schedule_length_ticks} ticks misses the "
            f"{ticks_available(f_rev, cgra_clock):.1f}-tick budget at "
            f"f_rev={f_rev:.3e} Hz (slack {slack:.1f} ticks)"
        )
    return slack
