"""Runtime differential oracle for vectorization certificates.

A :class:`~repro.cgra.verify.dependence.VectorizationCertificate` claims
that every op in a *chunkable* segment may be evaluated over a whole
``[T]``-iteration chunk at once.  This module puts that claim on trial:

* **Pass A (reference)** runs the cycle-accurate interpreter for ``T``
  iterations under pure, iteration-indexed IO handlers, recording the
  per-iteration value of every computed node, the start-of-chunk value
  of every loop-carried register, and every actuator write.
* **Pass B (chunked)** re-evaluates each certified op as one vectorized
  NumPy operation over ``[T]`` float arrays, walking segments in
  certificate order: certified operands come from the chunk-computed
  vectors (never the reference trace — a wrongly certified cycle must
  *fail*, not silently fall back), sequential-boundary operands come
  from the reference trace, and distance-1 carried reads are satisfied
  by the shift trick ``[incoming, src_vec[:-1]]``.
* The two executions must agree **bit-exactly** on every certified node
  and every actuator write; any difference raises
  :class:`~repro.errors.VerificationError`.

The vector arithmetic mirrors the batched code emitter in
:mod:`repro.cgra.engine` (elementwise float32 NumPy ops, proven
bit-identical per lane to the scalar engine by the engine parity suite),
so a passing oracle certifies exactly the execution model the future
array-lowered engine will use.

IO handlers are *pure* callables of the global iteration index:
``readers[port](t) -> float`` and ``addr_readers[port](t, addr) ->
float``.  This is the pure-handler contract the certificate is scoped
to; closed-loop feedback through the bus is sequential by construction
(see ``io-read-write-port`` refusals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.cgra.ops import Op
from repro.cgra.scheduler import Schedule
from repro.cgra.sensor import SensorBus
from repro.cgra.verify.dependence import (
    VectorizationCertificate,
    certify_vectorization,
)
from repro.cgra.verify.effects import summarize_effects
from repro.errors import ExecutionError, VerificationError

__all__ = ["OracleResult", "run_chunk_oracle"]


@dataclass(frozen=True)
class OracleResult:
    """Summary of one oracle run (raises instead of reporting failure)."""

    iterations: int
    segments_checked: int
    ops_checked: int
    writes_checked: int


def _reference_run(
    schedule: Schedule,
    params: dict[str, float],
    readers: Mapping[int, Callable],
    addr_readers: Mapping[int, Callable],
    write_ports: tuple[int, ...],
    n_iterations: int,
    precision: str,
) -> tuple[dict[int, list[float]], dict[int, float], dict[int, list[float]]]:
    """Pass A: per-cycle interpreter run under iteration-indexed handlers."""
    from repro.cgra.executor import CgraExecutor

    bus = SensorBus()
    cursor = {"t": 0}
    for port, fn in readers.items():
        bus.register_reader(port, lambda fn=fn: float(fn(cursor["t"])))
    for port, fn in addr_readers.items():
        bus.register_addr_reader(port, lambda addr, fn=fn: float(fn(cursor["t"], addr)))
    writes: dict[int, list[float]] = {port: [] for port in write_ports}
    for port in write_ports:
        bus.register_writer(port, writes[port].append)

    executor = CgraExecutor(schedule, bus, params, precision=precision,
                            engine="interpreted")
    phi_ids = [phi.node_id for phi in schedule.graph.phis()]
    phi_start = {pid: executor.registers[pid] for pid in phi_ids}
    trace: dict[int, list[float]] = {}
    for t in range(n_iterations):
        cursor["t"] = t
        executor.run_iteration()
        snapshot = executor.registers
        for nid, value in snapshot.items():
            trace.setdefault(nid, []).append(value)
    return trace, phi_start, writes


def run_chunk_oracle(
    schedule: Schedule,
    params: dict[str, float] | None = None,
    readers: Mapping[int, Callable] | None = None,
    addr_readers: Mapping[int, Callable] | None = None,
    n_iterations: int = 64,
    precision: str = "single",
    certificate: VectorizationCertificate | None = None,
) -> OracleResult:
    """Differentially validate a certificate over one ``[T]`` chunk.

    Runs the per-cycle reference, then re-executes every certified
    segment chunk-wise and asserts bit-exact agreement on all certified
    node values and actuator writes.  Pass ``certificate=`` to check a
    hand-forged certificate (the negative-path tests prove the oracle
    rejects wrongly certified accumulators).  Raises
    :class:`~repro.errors.VerificationError` on the first divergence.
    """
    if n_iterations < 1:
        raise VerificationError("oracle needs at least one iteration")
    params = dict(params or {})
    readers = dict(readers or {})
    addr_readers = dict(addr_readers or {})
    if certificate is None:
        certificate = certify_vectorization(schedule).certificate
    effects = summarize_effects(schedule)
    graph = schedule.graph
    carried_map = {c.phi_id: c for c in effects.carried}
    entry_of = {e.node_id: e for e in effects.ops}
    entries = {
        nid: (tick, op, operands, io_id)
        for tick, op, nid, operands, io_id in _merged(schedule)
    }
    ftype = np.float32 if precision == "single" else np.float64

    trace, phi_start, writes = _reference_run(
        schedule, params, readers, addr_readers,
        effects.io_write_ports(), n_iterations, precision,
    )

    T = n_iterations
    certified = certificate.certified_node_ids()
    chunkvals: dict[int, np.ndarray] = {}
    ops_checked = 0
    writes_checked = 0
    segments_checked = 0

    def trace_vector(node_id: int) -> np.ndarray:
        return np.asarray(trace[node_id], dtype=np.float64).astype(ftype)

    def carried_vector(phi_id: int, consumer: int) -> np.ndarray:
        reg = carried_map[phi_id]
        if not reg.resolved or reg.distance != 1:
            raise VerificationError(
                f"certificate invalid: certified node {consumer} reads carried "
                f"register {phi_id} that is not a resolved distance-1 dependence"
            )
        incoming = ftype(phi_start[phi_id])
        if reg.source_kind in ("const", "param"):
            node = graph.node(reg.source)
            value = node.value if reg.source_kind == "const" else params[node.name]
            tail = np.full(T - 1, ftype(value), dtype=ftype)
        elif reg.source in certified:
            if reg.source not in chunkvals:
                raise VerificationError(
                    f"certificate invalid: carried source {reg.source} of register "
                    f"{phi_id} is certified but not yet computed — segment order "
                    "violates the dependence topology"
                )
            tail = chunkvals[reg.source][: T - 1]
        else:
            tail = trace_vector(reg.source)[: T - 1]
        return np.concatenate([np.asarray([incoming], dtype=ftype), tail])

    def operand_vector(operand: int, consumer: int) -> np.ndarray:
        node = graph.node(operand)
        if operand in entry_of:
            if operand in certified:
                if operand not in chunkvals:
                    raise VerificationError(
                        f"certificate invalid: certified operand {operand} of node "
                        f"{consumer} not yet computed — segment order violates the "
                        "dependence topology"
                    )
                return chunkvals[operand]
            return trace_vector(operand)
        if node.op is Op.CONST:
            return np.full(T, ftype(node.value), dtype=ftype)
        if node.op is Op.PARAM:
            return np.full(T, ftype(params[node.name]), dtype=ftype)
        if node.op is Op.PHI:
            return carried_vector(operand, consumer)
        raise VerificationError(
            f"node {operand} (op {node.op.name}) cannot feed a chunked op"
        )

    zero, one = ftype(0.0), ftype(1.0)

    def compute(nid: int) -> np.ndarray:
        _tick, op, operands, io_id = entries[nid]
        if op is Op.SENSOR_READ:
            fn = readers[io_id]
            return np.asarray([ftype(float(fn(t))) for t in range(T)], dtype=ftype)
        if op is Op.SENSOR_READ_ADDR:
            fn = addr_readers[io_id]
            addr = operand_vector(operands[0], nid)
            return np.asarray(
                [ftype(float(fn(t, float(addr[t])))) for t in range(T)], dtype=ftype
            )
        vectors = [operand_vector(operand, nid) for operand in operands]
        if op is Op.ACTUATOR_WRITE:
            return vectors[0]
        a = vectors[0]
        if op is Op.FADD:
            return a + vectors[1]
        if op is Op.FSUB:
            return a - vectors[1]
        if op is Op.FMUL:
            return a * vectors[1]
        if op is Op.FDIV:
            if np.any(vectors[1] == 0.0):
                raise ExecutionError(f"division by zero in node {nid}")
            return a / vectors[1]
        if op is Op.FSQRT:
            if np.any(a < 0.0):
                raise ExecutionError(f"sqrt of negative value in node {nid}")
            return np.sqrt(a)
        if op is Op.FNEG:
            return -a
        if op is Op.FMIN:
            return np.minimum(a, vectors[1])
        if op is Op.FMAX:
            return np.maximum(a, vectors[1])
        if op in (Op.CMP_LT, Op.CMP_LE):
            mask = a < vectors[1] if op is Op.CMP_LT else a <= vectors[1]
            return np.where(mask, one, zero)
        if op is Op.SELECT:
            return np.where(a != 0.0, vectors[1], vectors[2])
        raise VerificationError(f"op {op.name} cannot be chunked")

    with np.errstate(over="raise", invalid="raise", divide="raise"):
        for segment in certificate.segments:
            if segment.kind != "chunkable":
                continue
            segments_checked += 1
            for nid in segment.node_ids:
                vector = np.asarray(compute(nid), dtype=ftype)
                if vector.ndim == 0:
                    vector = np.full(T, vector, dtype=ftype)
                op = entries[nid][1]
                if op is Op.ACTUATOR_WRITE:
                    port = entries[nid][3]
                    recorded = writes[port]
                    if len(recorded) != T:
                        raise VerificationError(
                            f"oracle mismatch: port {port} saw {len(recorded)} "
                            f"writes in {T} iterations"
                        )
                    got = vector.astype(np.float64)
                    ref = np.asarray(recorded, dtype=np.float64)
                    if not np.array_equal(got, ref):
                        bad = int(np.argmax(got != ref))
                        raise VerificationError(
                            f"oracle mismatch: chunked write to port {port} "
                            f"diverges at iteration {bad}: "
                            f"{got[bad]!r} != {ref[bad]!r}"
                        )
                    writes_checked += 1
                else:
                    chunkvals[nid] = vector
                    got = vector.astype(np.float64)
                    ref = np.asarray(trace[nid], dtype=np.float64)
                    if not np.array_equal(got, ref):
                        bad = int(np.argmax(got != ref))
                        raise VerificationError(
                            f"oracle mismatch: chunked node {nid} "
                            f"({entries[nid][1].name}) diverges at iteration "
                            f"{bad}: {got[bad]!r} != {ref[bad]!r}"
                        )
                ops_checked += 1

    return OracleResult(
        iterations=T,
        segments_checked=segments_checked,
        ops_checked=ops_checked,
        writes_checked=writes_checked,
    )


def _merged(schedule: Schedule) -> list:
    from repro.cgra.engine import merged_entries

    return merged_entries(schedule)
