"""Pass 3: interval (fixed-point) range analysis over the dataflow graph.

Propagates closed value intervals from what the hardware pins down —
the 14-bit ADC digitises into the ±1 V input window, so every sensor
read lands in ``[-1, 1]`` — and from caller-supplied parameter bounds,
through the arithmetic of the loop body.  Loop-carried PHI registers
are solved by fixed-point iteration with widening, so self-reinforcing
recurrences (an accumulator that only grows) converge to ``±inf``
instead of looping forever.

Findings (pass id ``"range"``):

* ``div-by-zero`` / ``possible-div-by-zero`` — divisor interval is
  exactly zero / contains zero;
* ``sqrt-negative`` / ``possible-sqrt-negative`` — FSQRT operand
  provably / possibly negative;
* ``overflow`` / ``possible-overflow`` — a finite interval escapes the
  float32 representable range (the overlay datapath is binary32);
* ``dac-saturation`` / ``dac-may-saturate`` / ``dac-unbounded`` — the
  value driven into the 16-bit DAC lies outside / may lie outside the
  ±1 V output window, or cannot be bounded at all because a parameter
  has no caller-supplied range.

Severity policy: ERROR for definite violations, WARNING when the
violation is possible with *finite* bounds, INFO when the only reason
the property is unprovable is an unbounded input — shipped kernels have
physically unbounded parameters, so the default report carries INFO
records only and the lint CLI still exits 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cgra.dfg import DataflowGraph, DFGNode
from repro.cgra.ops import Op
from repro.cgra.verify.diagnostics import DiagnosticReport, Severity
from repro.errors import CgraError

__all__ = ["Interval", "analyze_ranges", "ADC_WINDOW", "DAC_WINDOW"]

_PASS = "range"
_F32_MAX = float(np.finfo(np.float32).max)

#: Input window of the ADC front end (±1 V, vpp = 2.0).
ADC_WINDOW = (-1.0, 1.0)
#: Output window of the DAC back end (±1 V, vpp = 2.0).
DAC_WINDOW = (-1.0, 1.0)

#: Fixed-point iteration budget; widening kicks in halfway through.
_MAX_ROUNDS = 16
_WIDEN_AFTER = 8

_INF = float("inf")


def _prod(a: float, b: float) -> float:
    """Endpoint product with the interval convention 0 * inf = 0."""
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` over the extended reals."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise CgraError(f"malformed interval [{self.lo}, {self.hi}]")

    # -- constructors --------------------------------------------------

    @staticmethod
    def point(v: float) -> "Interval":
        """The degenerate interval ``[v, v]``."""
        return Interval(float(v), float(v))

    @staticmethod
    def top() -> "Interval":
        """The unbounded interval ``[-inf, inf]``."""
        return Interval(-_INF, _INF)

    # -- predicates ----------------------------------------------------

    @property
    def is_finite(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def contains(self, v: float) -> bool:
        return self.lo <= v <= self.hi

    def inside(self, lo: float, hi: float) -> bool:
        """True when the whole interval lies within ``[lo, hi]``."""
        return self.lo >= lo and self.hi <= hi

    def outside(self, lo: float, hi: float) -> bool:
        """True when the interval is provably disjoint from ``[lo, hi]``."""
        return self.hi < lo or self.lo > hi

    # -- lattice -------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        """Smallest interval covering both (the lattice join)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, newer: "Interval") -> "Interval":
        """Classic interval widening: any still-moving bound jumps to ±inf."""
        lo = self.lo if newer.lo >= self.lo else -_INF
        hi = self.hi if newer.hi <= self.hi else _INF
        return Interval(lo, hi)

    # -- arithmetic ----------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        corners = [
            _prod(self.lo, other.lo), _prod(self.lo, other.hi),
            _prod(self.hi, other.lo), _prod(self.hi, other.hi),
        ]
        return Interval(min(corners), max(corners))

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def divide(self, other: "Interval") -> "Interval":
        """Quotient interval; ``top`` when the divisor straddles zero."""
        if other.contains(0.0):
            return Interval.top()
        corners = [
            self.lo / other.lo, self.lo / other.hi,
            self.hi / other.lo, self.hi / other.hi,
        ]
        return Interval(min(corners), max(corners))

    def sqrt(self) -> "Interval":
        """Square root of the non-negative part (empty part clamps to 0)."""
        hi = math.sqrt(self.hi) if self.hi > 0 else 0.0
        lo = math.sqrt(self.lo) if self.lo > 0 else 0.0
        return Interval(lo, hi)

    def min_(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def __str__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


def _severity(*intervals: Interval) -> Severity:
    """WARNING when all contributing intervals are finite, else INFO.

    A *possible* violation derived from finite bounds is actionable
    (tighten the model); one driven by an unbounded parameter merely
    states missing information.
    """
    return (
        Severity.WARNING if all(iv.is_finite for iv in intervals) else Severity.INFO
    )


def _transfer(
    node: DFGNode,
    args: list[Interval],
    report: DiagnosticReport,
    *,
    emit: bool,
) -> Interval:
    """Output interval of one node; ``emit`` gates per-op diagnostics.

    The fixed-point loop calls this repeatedly with ``emit=False`` and
    only the final pass reports, so iterating never duplicates records.
    """
    op = node.op
    if op in (Op.FADD,):
        return args[0] + args[1]
    if op is Op.FSUB:
        return args[0] - args[1]
    if op is Op.FMUL:
        return args[0] * args[1]
    if op is Op.FNEG:
        return -args[0]
    if op is Op.FMIN:
        return args[0].min_(args[1])
    if op is Op.FMAX:
        return args[0].max_(args[1])
    if op is Op.FDIV:
        divisor = args[1]
        if emit and divisor.contains(0.0):
            if divisor.lo == divisor.hi == 0.0:
                report.emit(
                    Severity.ERROR, _PASS, "div-by-zero",
                    f"division by a divisor that is always zero {divisor}",
                    node_id=node.node_id,
                )
            else:
                report.emit(
                    _severity(divisor), _PASS, "possible-div-by-zero",
                    f"divisor range {divisor} contains zero",
                    node_id=node.node_id,
                )
        return args[0].divide(divisor)
    if op is Op.FSQRT:
        operand = args[0]
        if emit and operand.lo < 0:
            if operand.hi < 0:
                report.emit(
                    Severity.ERROR, _PASS, "sqrt-negative",
                    f"sqrt of an always-negative value {operand}",
                    node_id=node.node_id,
                )
            else:
                report.emit(
                    _severity(operand), _PASS, "possible-sqrt-negative",
                    f"sqrt operand range {operand} extends below zero",
                    node_id=node.node_id,
                )
        return operand.sqrt()
    if op in (Op.CMP_LT, Op.CMP_LE):
        a, b = args
        if op is Op.CMP_LT:
            if a.hi < b.lo:
                return Interval.point(1.0)
            if a.lo >= b.hi:
                return Interval.point(0.0)
        else:
            if a.hi <= b.lo:
                return Interval.point(1.0)
            if a.lo > b.hi:
                return Interval.point(0.0)
        return Interval(0.0, 1.0)
    if op is Op.SELECT:
        cond, if_true, if_false = args
        if not cond.contains(0.0):
            return if_true
        if cond.lo == cond.hi == 0.0:
            return if_false
        return if_true.join(if_false)
    if op is Op.ACTUATOR_WRITE:
        return args[0]
    raise CgraError(f"range analysis has no transfer function for {op}")  # pragma: no cover


def analyze_ranges(
    graph: DataflowGraph,
    *,
    param_bounds: dict[str, tuple[float, float]] | None = None,
    sensor_bounds: tuple[float, float] = ADC_WINDOW,
) -> DiagnosticReport:
    """Propagate value intervals through ``graph`` and report findings.

    Parameters
    ----------
    graph:
        A validated dataflow graph (``graph.validate()`` is re-run here;
        failures become a single ``graph-invalid`` diagnostic).
    param_bounds:
        Optional ``name → (lo, hi)`` ranges for live-in parameters;
        unlisted parameters are unbounded.
    sensor_bounds:
        Interval every sensor read is assumed to land in — defaults to
        the ADC's ±1 V digitisation window.

    Returns the :class:`DiagnosticReport`; the computed per-node
    intervals are attached as ``report.intervals`` (node id →
    :class:`Interval`) for inspection and the CLI's verbose mode.
    """
    report = DiagnosticReport()
    report.intervals = {}  # type: ignore[attr-defined]
    try:
        graph.validate()
    except CgraError as exc:
        report.emit(Severity.ERROR, _PASS, "graph-invalid", str(exc))
        return report

    bounds = dict(param_bounds or {})
    sensor_iv = Interval(float(sensor_bounds[0]), float(sensor_bounds[1]))

    def leaf(node: DFGNode) -> Interval | None:
        if node.op is Op.CONST:
            return Interval.point(node.value)
        if node.op is Op.PARAM:
            if node.name in bounds:
                lo, hi = bounds[node.name]
                return Interval(float(lo), float(hi))
            return Interval.top()
        if node.op in (Op.SENSOR_READ, Op.SENSOR_READ_ADDR):
            return sensor_iv
        return None

    def phi_init(node: DFGNode) -> Interval:
        if node.init_value is not None:
            return Interval.point(node.init_value)
        if node.init_param in bounds:
            lo, hi = bounds[node.init_param]
            return Interval(float(lo), float(hi))
        return Interval.top()

    order = list(graph.topological_order())
    intervals: dict[int, Interval] = {}
    # Round 0: PHIs start at their first-iteration input; each round
    # folds the back-edge value in and re-propagates until stable.
    for node in order:
        if node.op is Op.PHI:
            intervals[node.node_id] = phi_init(node)

    phis = graph.phis()
    for round_no in range(_MAX_ROUNDS):
        for node in order:
            if node.op is Op.PHI:
                continue
            fixed = leaf(node)
            if fixed is not None:
                intervals[node.node_id] = fixed
                continue
            args = [intervals[o] for o in node.operands]
            intervals[node.node_id] = _transfer(node, args, report, emit=False)
        changed = False
        for phi in phis:
            old = intervals[phi.node_id]
            new = old.join(phi_init(phi)).join(intervals[phi.back_edge])
            if round_no >= _WIDEN_AFTER:
                new = old.widen(new)
            if new != old:
                intervals[phi.node_id] = new
                changed = True
        if not changed:
            break

    # Final reporting pass over the converged intervals.
    for node in order:
        if node.op is Op.PHI or leaf(node) is not None:
            continue
        args = [intervals[o] for o in node.operands]
        result = _transfer(node, args, report, emit=True)
        intervals[node.node_id] = result
        # Overflow vs the binary32 overlay datapath: only meaningful
        # when the bound itself is finite (an inf bound already says
        # "unbounded", which the DAC check reports once, at the sink).
        if result.is_finite and not result.inside(-_F32_MAX, _F32_MAX):
            definite = result.outside(-_F32_MAX, _F32_MAX)
            report.emit(
                Severity.ERROR if definite else Severity.WARNING,
                _PASS,
                "overflow" if definite else "possible-overflow",
                f"value range {result} exceeds float32 "
                f"(|x| <= {_F32_MAX:.4g})",
                node_id=node.node_id,
            )
        if node.op is Op.ACTUATOR_WRITE:
            lo, hi = DAC_WINDOW
            value = intervals[node.operands[0]]
            if value.outside(lo, hi):
                report.emit(
                    Severity.ERROR, _PASS, "dac-saturation",
                    f"actuator value range {value} lies entirely outside the "
                    f"DAC's ±1 V window",
                    node_id=node.node_id,
                )
            elif not value.is_finite:
                report.emit(
                    Severity.INFO, _PASS, "dac-unbounded",
                    f"actuator value range {value} cannot be bounded — supply "
                    "param_bounds to prove it stays inside the ±1 V DAC window",
                    node_id=node.node_id,
                )
            elif not value.inside(lo, hi):
                report.emit(
                    Severity.WARNING, _PASS, "dac-may-saturate",
                    f"actuator value range {value} extends beyond the DAC's "
                    "±1 V window; the output will clip",
                    node_id=node.node_id,
                )

    report.intervals = intervals  # type: ignore[attr-defined]
    return report
