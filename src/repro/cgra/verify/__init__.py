"""Static analysis of the CGRA compile pipeline (no execution needed).

Three passes, each reporting structured
:class:`~repro.cgra.verify.diagnostics.Diagnostic` records instead of
raising on the first problem:

* :func:`verify_context_images` / :func:`verify_schedule` /
  :func:`verify_modulo_schedule` — re-derive the legality of a schedule
  or context-image set directly from the dataflow graph and fabric
  (pass id ``"schedule"``);
* :func:`lint_source` / :func:`lint_program` — semantic linting of
  mini-C model sources with line/column positions (pass id ``"lint"``);
* :func:`analyze_ranges` — interval range analysis flagging overflow,
  division by zero and ±1 V DAC-window saturation (pass id ``"range"``);
* :func:`summarize_effects` / :func:`certify_vectorization` — per-op
  read/write effect summaries and loop-carried dependence analysis
  partitioning the compiled program into chunkable/sequential segments
  (pass id ``"dependence"``), with :func:`run_chunk_oracle` as the
  runtime differential validator of every certificate.

``python -m repro.cgra.lint`` runs the source-level passes over source
files or the built-in kernels; ``python -m repro.analysis`` adds the
dependence certificates and the shard-safety lint.
"""

from repro.cgra.verify.chunk_oracle import OracleResult, run_chunk_oracle
from repro.cgra.verify.dependence import (
    CertificationResult,
    Segment,
    VectorizationCertificate,
    certify_vectorization,
)
from repro.cgra.verify.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    SourceLocation,
)
from repro.cgra.verify.effects import (
    CarriedRegister,
    EffectSummary,
    OpEffects,
    resolve_carried,
    summarize_effects,
)
from repro.cgra.verify.linter import lint_program, lint_source
from repro.cgra.verify.range_analysis import Interval, analyze_ranges
from repro.cgra.verify.schedule_verifier import (
    verify_context_images,
    verify_modulo_schedule,
    verify_schedule,
)

__all__ = [
    "Severity",
    "SourceLocation",
    "Diagnostic",
    "DiagnosticReport",
    "verify_context_images",
    "verify_schedule",
    "verify_modulo_schedule",
    "lint_source",
    "lint_program",
    "analyze_ranges",
    "Interval",
    "OpEffects",
    "CarriedRegister",
    "EffectSummary",
    "resolve_carried",
    "summarize_effects",
    "Segment",
    "VectorizationCertificate",
    "CertificationResult",
    "certify_vectorization",
    "OracleResult",
    "run_chunk_oracle",
]
