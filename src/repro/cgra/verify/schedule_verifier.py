"""Pass 1: static legality verification of schedules and context images.

The paper's workflow inserts compiled context memories "into the final
FPGA bitstream without requiring a new synthesis" — nothing downstream
re-checks them, so a bad context silently corrupts the beam model the
LLRF controller is tested against.  This pass re-derives every legality
condition of a :class:`~repro.cgra.scheduler.Schedule` /
:class:`~repro.cgra.context.ContextImage` set *independently* from the
:class:`~repro.cgra.dfg.DataflowGraph` and the
:class:`~repro.cgra.fabric.CgraFabric`, without executing a kernel and
without trusting the scheduler's own bookkeeping:

* coverage — every non-zero-time node is placed exactly once, nothing
  unknown or duplicated is placed;
* dependences — an operation issues only after every operand has
  finished *and* been routed to the consuming PE
  (``finish + hops × route_hop`` ticks);
* exclusivity — no PE executes two operations at once (IO operations
  hold their PE for the SensorAccess issue window);
* SensorAccess — all IO sits on the single IO PE and issues at most one
  request per :attr:`~repro.cgra.scheduler.ListScheduler.IO_ISSUE_TICKS`;
* capacity — per-PE entry counts fit the context memories;
* values — constant pseudo-entries are finite and representable in the
  overlay's single-precision operators;
* PHI consistency — loop-carried registers have exactly one initial
  value and a scheduled back-edge producer (for modulo schedules, the
  distance-1 timing at the initiation interval);
* deadline — the schedule fits one revolution period when a revolution
  frequency is given.

Violations become :class:`~repro.cgra.verify.diagnostics.Diagnostic`
records, never exceptions: a corrupted image yields the full list of
problems, which is what makes the negative-path tests and the CLI useful.
"""

from __future__ import annotations

import numpy as np

from repro.cgra.context import ContextImage, build_context_images
from repro.cgra.dfg import DataflowGraph
from repro.cgra.fabric import CgraFabric
from repro.cgra.modulo import ModuloSchedule
from repro.cgra.ops import Op, OperatorLatencies
from repro.cgra.scheduler import ListScheduler, Schedule
from repro.cgra.verify.diagnostics import DiagnosticReport, Severity
from repro.errors import CgraError

__all__ = ["verify_schedule", "verify_context_images", "verify_modulo_schedule"]

_PASS = "schedule"

#: Largest magnitude the overlay's single-precision FP cores can hold.
_F32_MAX = float(np.finfo(np.float32).max)


def _occupancy(latencies: OperatorLatencies, op: Op, io_issue_ticks: int) -> int:
    if op in (Op.SENSOR_READ, Op.SENSOR_READ_ADDR, Op.ACTUATOR_WRITE):
        return io_issue_ticks
    return max(1, latencies.of(op))


def _check_phis(graph: DataflowGraph, scheduled: set[int], report: DiagnosticReport) -> None:
    """Loop-carried register consistency (shared by both verifiers)."""
    for phi in graph.phis():
        if phi.back_edge is None:
            report.emit(
                Severity.ERROR, _PASS, "phi-unbound",
                f"PHI {phi.name!r} has no back edge — bind_phi() was never called",
                node_id=phi.node_id,
            )
            continue
        if phi.back_edge not in graph.nodes:
            report.emit(
                Severity.ERROR, _PASS, "phi-unbound",
                f"PHI {phi.name!r} back edge {phi.back_edge} is not a graph node",
                node_id=phi.node_id,
            )
            continue
        if (phi.init_value is None) == (phi.init_param is None):
            report.emit(
                Severity.ERROR, _PASS, "phi-init",
                f"PHI {phi.name!r} needs exactly one of init_value / init_param",
                node_id=phi.node_id,
            )
        elif phi.init_param is not None and phi.init_param not in graph.params:
            report.emit(
                Severity.ERROR, _PASS, "phi-init",
                f"PHI {phi.name!r} init parameter {phi.init_param!r} is not a "
                "graph parameter",
                node_id=phi.node_id,
            )
        source = graph.nodes[phi.back_edge]
        if not source.is_zero_time() and source.node_id not in scheduled:
            report.emit(
                Severity.ERROR, _PASS, "phi-unbound",
                f"PHI {phi.name!r} back-edge producer {source.node_id} is not "
                "scheduled — the register would never latch a value",
                node_id=phi.node_id,
            )


def _check_deadline(
    length: int,
    f_rev: float | None,
    clock_hz: float,
    report: DiagnosticReport,
    what: str,
) -> None:
    if f_rev is None or f_rev <= 0.0:
        return
    budget = clock_hz / f_rev
    slack = budget - length
    if slack < 0.0:
        report.emit(
            Severity.ERROR, _PASS, "deadline",
            f"{what} of {length} ticks misses the {budget:.1f}-tick revolution "
            f"budget at f_rev={f_rev:.4g} Hz (slack {slack:.1f} ticks)",
        )


def verify_context_images(
    images: dict[tuple[int, int], ContextImage],
    graph: DataflowGraph,
    fabric: CgraFabric,
    *,
    io_issue_ticks: int = ListScheduler.IO_ISSUE_TICKS,
    f_rev: float | None = None,
) -> DiagnosticReport:
    """Verify a set of context images against the graph and fabric.

    This is the "bitstream insert" gate: the images are all the hardware
    would see, so everything is re-derived from their ticks and the
    graph/fabric contracts.  Returns a report; never raises on content
    problems.
    """
    report = DiagnosticReport()
    latencies = fabric.config.latencies

    try:
        graph.validate()
    except CgraError as exc:
        report.emit(Severity.ERROR, _PASS, "graph-invalid", str(exc))
        return report

    # -- per-entry structural checks + placement table -----------------
    placed: dict[int, tuple[tuple[int, int], int]] = {}  # node -> (pe, tick)
    fabric_pes = set(fabric.pes)
    for pe, image in images.items():
        if pe not in fabric_pes:
            report.emit(
                Severity.ERROR, _PASS, "unknown-pe",
                f"context image addresses PE {pe} outside the {fabric.config.rows}x"
                f"{fabric.config.cols} fabric", pe=pe,
            )
            continue
        if len(image.entries) > fabric.config.context_slots:
            report.emit(
                Severity.ERROR, _PASS, "context-overflow",
                f"PE {pe} holds {len(image.entries)} context entries, memory "
                f"depth is {fabric.config.context_slots}", pe=pe,
            )
        for entry in image.entries:
            try:
                op = Op(entry.op)
            except ValueError:
                report.emit(
                    Severity.ERROR, _PASS, "unknown-op",
                    f"entry for node {entry.node_id} carries unknown op "
                    f"{entry.op!r}", node_id=entry.node_id, pe=pe, tick=entry.tick,
                )
                continue
            if entry.tick < 0:
                report.emit(
                    Severity.ERROR, _PASS, "negative-tick",
                    f"node {entry.node_id} issues at negative tick {entry.tick}",
                    node_id=entry.node_id, pe=pe, tick=entry.tick,
                )
            if entry.value is not None and (
                not np.isfinite(entry.value) or abs(entry.value) > _F32_MAX
            ):
                report.emit(
                    Severity.ERROR, _PASS, "const-range",
                    f"constant {entry.value!r} for node {entry.node_id} is outside "
                    "the single-precision operator range",
                    node_id=entry.node_id, pe=pe, tick=entry.tick,
                )
            if entry.node_id not in graph.nodes:
                report.emit(
                    Severity.ERROR, _PASS, "unknown-node",
                    f"entry references node {entry.node_id} which is not in graph "
                    f"{graph.name!r}", node_id=entry.node_id, pe=pe, tick=entry.tick,
                )
                continue
            node = graph.nodes[entry.node_id]
            if op is Op.CONST and node.op is Op.CONST:
                # Preloaded constant pseudo-entry: value-only, no timing.
                continue
            if node.op is not op:
                report.emit(
                    Severity.ERROR, _PASS, "op-mismatch",
                    f"node {entry.node_id} is {node.op.value!r} in the graph but "
                    f"{op.value!r} in the context image",
                    node_id=entry.node_id, pe=pe, tick=entry.tick,
                )
                continue
            if tuple(entry.operands) != tuple(node.operands):
                report.emit(
                    Severity.ERROR, _PASS, "operand-mismatch",
                    f"node {entry.node_id} operands {tuple(entry.operands)} differ "
                    f"from the graph's {tuple(node.operands)}",
                    node_id=entry.node_id, pe=pe, tick=entry.tick,
                )
            if node.is_io() and entry.io_id != node.sensor_id:
                report.emit(
                    Severity.ERROR, _PASS, "io-id-mismatch",
                    f"node {entry.node_id} addresses io id {entry.io_id}, graph "
                    f"says {node.sensor_id}",
                    node_id=entry.node_id, pe=pe, tick=entry.tick,
                )
            if node.is_zero_time():
                report.emit(
                    Severity.ERROR, _PASS, "zero-time-scheduled",
                    f"zero-time node {entry.node_id} ({node.op.value}) occupies a "
                    "context slot — preloaded values live in register memory",
                    node_id=entry.node_id, pe=pe, tick=entry.tick,
                )
                continue
            if not fabric.supports(pe, node.op):
                report.emit(
                    Severity.ERROR, _PASS, "capability",
                    f"PE {pe} has no {node.op.value} operator",
                    node_id=entry.node_id, pe=pe, tick=entry.tick,
                )
            if entry.node_id in placed:
                report.emit(
                    Severity.ERROR, _PASS, "duplicate-op",
                    f"node {entry.node_id} appears in more than one context slot",
                    node_id=entry.node_id, pe=pe, tick=entry.tick,
                )
                continue
            placed[entry.node_id] = (pe, entry.tick)

    # -- coverage ------------------------------------------------------
    for node in graph.nodes.values():
        if node.is_zero_time():
            continue
        if node.node_id not in placed:
            report.emit(
                Severity.ERROR, _PASS, "missing-op",
                f"node {node.node_id} ({node.op.value}) is not in any context image",
                node_id=node.node_id,
            )

    # -- dependences with routing delays -------------------------------
    for nid, (pe, tick) in placed.items():
        node = graph.nodes[nid]
        for operand_id in node.operands:
            producer = graph.nodes.get(operand_id)
            if producer is None or producer.is_zero_time():
                continue
            if operand_id not in placed:
                continue  # already reported as missing-op
            p_pe, p_tick = placed[operand_id]
            if p_pe not in fabric_pes or pe not in fabric_pes:
                continue
            ready = p_tick + latencies.of(producer.op) + fabric.routing_delay(p_pe, pe)
            if tick < ready:
                report.emit(
                    Severity.ERROR, _PASS, "operand-not-ready",
                    f"node {nid} issues at tick {tick} but operand {operand_id} "
                    f"(finish {p_tick + latencies.of(producer.op)} on PE {p_pe}, "
                    f"+{fabric.routing_delay(p_pe, pe)} routing) is ready at {ready}",
                    node_id=nid, pe=pe, tick=tick,
                )

    # -- PE exclusivity -------------------------------------------------
    by_pe: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for nid, (pe, tick) in placed.items():
        by_pe.setdefault(pe, []).append((tick, nid))
    for pe, entries in by_pe.items():
        entries.sort()
        for (tick_a, nid_a), (tick_b, nid_b) in zip(entries, entries[1:]):
            occ = _occupancy(latencies, graph.nodes[nid_a].op, io_issue_ticks)
            if tick_b < tick_a + occ:
                report.emit(
                    Severity.ERROR, _PASS, "pe-overlap",
                    f"PE {pe} double-booked: node {nid_a} occupies ticks "
                    f"[{tick_a}, {tick_a + occ}) and node {nid_b} issues at {tick_b}",
                    node_id=nid_b, pe=pe, tick=tick_b,
                )

    # -- SensorAccess serialisation -------------------------------------
    io_placed = sorted(
        (tick, nid, pe) for nid, (pe, tick) in placed.items() if graph.nodes[nid].is_io()
    )
    for tick, nid, pe in io_placed:
        if pe != fabric.io_pe:
            report.emit(
                Severity.ERROR, _PASS, "io-wrong-pe",
                f"IO node {nid} is placed on PE {pe}; only {fabric.io_pe} is wired "
                "to the SensorAccess module",
                node_id=nid, pe=pe, tick=tick,
            )
    for (tick_a, nid_a, _), (tick_b, nid_b, _) in zip(io_placed, io_placed[1:]):
        if tick_b - tick_a < io_issue_ticks:
            report.emit(
                Severity.ERROR, _PASS, "io-rate",
                f"SensorAccess accepts one request per {io_issue_ticks} ticks: "
                f"nodes {nid_a} and {nid_b} issue at ticks {tick_a} and {tick_b}",
                node_id=nid_b, tick=tick_b,
            )

    # -- loop-carried registers and the deadline ------------------------
    _check_phis(graph, set(placed), report)
    length = max(
        (tick + latencies.of(graph.nodes[nid].op) for nid, (_, tick) in placed.items()),
        default=0,
    )
    _check_deadline(length, f_rev, fabric.config.clock_mhz * 1e6, report, "schedule")
    return report


def verify_schedule(schedule: Schedule, *, f_rev: float | None = None) -> DiagnosticReport:
    """Verify a list schedule by checking the context images it emits.

    Equivalent to ``verify_context_images(build_context_images(s), ...)``
    — the verifier deliberately looks at what would be inserted into the
    bitstream, not at the scheduler's internal bookkeeping.
    """
    return verify_context_images(
        build_context_images(schedule),
        schedule.graph,
        schedule.fabric,
        f_rev=f_rev,
    )


def verify_modulo_schedule(
    schedule: ModuloSchedule, *, f_rev: float | None = None
) -> DiagnosticReport:
    """Verify a software-pipelined schedule, including cross-iteration
    PHI timing at the initiation interval and the modulo reservation
    table.

    With initiation every II ticks the deadline criterion is II (not the
    flat length): one iteration *starts* per revolution.
    """
    report = DiagnosticReport()
    graph, fabric, ii = schedule.graph, schedule.fabric, schedule.ii
    latencies = fabric.config.latencies

    try:
        graph.validate()
    except CgraError as exc:
        report.emit(Severity.ERROR, _PASS, "graph-invalid", str(exc))
        return report
    if ii < 1:
        report.emit(
            Severity.ERROR, _PASS, "bad-ii", f"initiation interval {ii} must be >= 1"
        )
        return report

    fabric_pes = set(fabric.pes)
    placed = dict(schedule.ops)

    # -- coverage, capability, occupancy, reservations ------------------
    for node in graph.nodes.values():
        if node.is_zero_time():
            continue
        if node.node_id not in placed:
            report.emit(
                Severity.ERROR, _PASS, "missing-op",
                f"node {node.node_id} ({node.op.value}) is not placed",
                node_id=node.node_id,
            )
    reservations: dict[tuple[tuple[int, int], int], int] = {}
    for nid, (pe, start) in placed.items():
        if nid not in graph.nodes:
            report.emit(
                Severity.ERROR, _PASS, "unknown-node",
                f"placement references node {nid} which is not in graph "
                f"{graph.name!r}", node_id=nid, pe=pe, tick=start,
            )
            continue
        node = graph.nodes[nid]
        if pe not in fabric_pes:
            report.emit(
                Severity.ERROR, _PASS, "unknown-pe",
                f"node {nid} placed on PE {pe} outside the fabric",
                node_id=nid, pe=pe, tick=start,
            )
            continue
        if start < 0:
            report.emit(
                Severity.ERROR, _PASS, "negative-tick",
                f"node {nid} starts at negative tick {start}",
                node_id=nid, pe=pe, tick=start,
            )
        if not fabric.supports(pe, node.op):
            report.emit(
                Severity.ERROR, _PASS, "capability",
                f"PE {pe} has no {node.op.value} operator",
                node_id=nid, pe=pe, tick=start,
            )
        if node.is_io() and pe != fabric.io_pe:
            report.emit(
                Severity.ERROR, _PASS, "io-wrong-pe",
                f"IO node {nid} is placed on PE {pe}; only {fabric.io_pe} is "
                "wired to the SensorAccess module",
                node_id=nid, pe=pe, tick=start,
            )
        occ = _occupancy(latencies, node.op, ListScheduler.IO_ISSUE_TICKS)
        if occ > ii:
            report.emit(
                Severity.ERROR, _PASS, "pe-overlap",
                f"node {nid} occupancy {occ} exceeds II {ii} — it would collide "
                "with its own next iteration",
                node_id=nid, pe=pe, tick=start,
            )
            continue
        for k in range(occ):
            slot = (pe, (start + k) % ii)
            if slot in reservations:
                report.emit(
                    Severity.ERROR, _PASS, "pe-overlap",
                    f"modulo reservation conflict on PE {pe} slot {slot[1]}: "
                    f"nodes {reservations[slot]} and {nid}",
                    node_id=nid, pe=pe, tick=start,
                )
                break
            reservations[slot] = nid

    # -- forward and loop-carried dependences ---------------------------
    for nid, (_pe, start) in placed.items():
        node = graph.nodes.get(nid)
        if node is None:
            continue
        for operand_id in node.operands:
            producer = graph.nodes.get(operand_id)
            if producer is None:
                continue
            if producer.op is Op.PHI:
                if producer.back_edge is None:
                    continue  # reported by _check_phis
                source = graph.nodes.get(producer.back_edge)
                if source is None or source.is_zero_time() or source.node_id not in placed:
                    continue
                _, s_start = placed[source.node_id]
                finish = s_start + latencies.of(source.op)
                if start + ii < finish:
                    report.emit(
                        Severity.ERROR, _PASS, "phi-timing",
                        f"loop-carried value {producer.name!r}: consumer node "
                        f"{nid} reads at tick {start} + II {ii} but producer "
                        f"{source.node_id} finishes at {finish} — the register "
                        "latches one iteration too late",
                        node_id=nid, tick=start,
                    )
                continue
            if producer.is_zero_time() or operand_id not in placed:
                continue
            _, p_start = placed[operand_id]
            finish = p_start + latencies.of(producer.op)
            if start < finish:
                report.emit(
                    Severity.ERROR, _PASS, "operand-not-ready",
                    f"node {nid} starts at tick {start} before operand "
                    f"{operand_id} finishes at {finish}",
                    node_id=nid, tick=start,
                )

    _check_phis(graph, set(placed), report)
    _check_deadline(ii, f_rev, fabric.config.clock_mhz * 1e6, report, "initiation interval")
    return report
