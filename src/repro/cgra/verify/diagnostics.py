"""Structured diagnostics shared by all static-analysis passes.

Every pass (schedule/context verifier, mini-C linter, range analysis)
reports findings as :class:`Diagnostic` records instead of raising on
the first problem — the analyses must be able to enumerate *all*
violations of a corrupted context set, the way a compiler lists every
error in a translation unit.  A :class:`DiagnosticReport` collects them,
offers severity filtering and a stable human-readable rendering, and
counts every appended record into the :mod:`repro.obs` metrics (label
set ``pass_id``/``severity``) when telemetry is enabled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs import get_registry
from repro.obs._state import STATE as _OBS

__all__ = ["Severity", "SourceLocation", "Diagnostic", "DiagnosticReport"]

_DIAGNOSTICS = get_registry().counter(
    "cgra_verify_diagnostics_total", "diagnostics emitted by the static-analysis passes"
)


class Severity(enum.IntEnum):
    """Diagnostic severity; comparable (ERROR is the most severe)."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class SourceLocation:
    """A position in mini-C source: 1-based line, 1-based column (0 = unknown)."""

    line: int
    col: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.col}" if self.col else str(self.line)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    Attributes
    ----------
    severity:
        ERROR marks a definite contract violation, WARNING a possible
        one, INFO a finding limited by missing information (e.g. an
        unbounded parameter making a range unprovable).
    pass_id:
        Which pass produced the record: ``"schedule"``, ``"lint"`` or
        ``"range"``.
    code:
        Stable machine-readable kebab-case identifier of the check.
    message:
        Human-readable explanation.
    location:
        Source position for frontend findings.
    node_id / pe / tick:
        Dataflow/placement coordinates for backend findings.
    """

    severity: Severity
    pass_id: str
    code: str
    message: str
    location: SourceLocation | None = None
    node_id: int | None = None
    pe: tuple[int, int] | None = None
    tick: int | None = None

    def render(self) -> str:
        """One-line rendering: ``error[schedule/pe-overlap] ...``."""
        where = []
        if self.location is not None:
            where.append(f"line {self.location}")
        if self.node_id is not None:
            where.append(f"node {self.node_id}")
        if self.pe is not None:
            where.append(f"PE {self.pe}")
        if self.tick is not None:
            where.append(f"tick {self.tick}")
        prefix = f"{self.severity}[{self.pass_id}/{self.code}]"
        loc = " " + ", ".join(where) if where else ""
        return f"{prefix}{loc}: {self.message}"

    def to_dict(self) -> dict:
        """JSON-friendly representation (CLI ``--json`` output).

        ``analyzer`` duplicates ``pass`` under the stable tooling-facing
        name; every diagnostic class carries both it and ``severity``.
        """
        out: dict = {
            "severity": str(self.severity),
            "pass": self.pass_id,
            "analyzer": self.pass_id,
            "code": self.code,
            "message": self.message,
        }
        if self.location is not None:
            out["line"] = self.location.line
            out["col"] = self.location.col
        if self.node_id is not None:
            out["node_id"] = self.node_id
        if self.pe is not None:
            out["pe"] = list(self.pe)
        if self.tick is not None:
            out["tick"] = self.tick
        return out


@dataclass
class DiagnosticReport:
    """Ordered collection of diagnostics from one or more passes."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        """Append one record (and count it into the obs metrics)."""
        self.diagnostics.append(diagnostic)
        if _OBS.enabled:
            _DIAGNOSTICS.inc(
                severity=str(diagnostic.severity), pass_id=diagnostic.pass_id
            )
        return diagnostic

    def emit(
        self,
        severity: Severity,
        pass_id: str,
        code: str,
        message: str,
        **kw: Any,
    ) -> Diagnostic:
        """Construct and append in one call (keyword args as in :class:`Diagnostic`)."""
        return self.add(
            Diagnostic(severity=severity, pass_id=pass_id, code=code, message=message, **kw)
        )

    def extend(self, other: "DiagnosticReport") -> None:
        """Append every record of another report."""
        for d in other.diagnostics:
            self.add(d)

    # -- queries -------------------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        """All records of one severity."""
        return [d for d in self.diagnostics if d.severity is severity]

    def errors(self) -> list[Diagnostic]:
        """All ERROR records."""
        return self.by_severity(Severity.ERROR)

    def warnings(self) -> list[Diagnostic]:
        """All WARNING records."""
        return self.by_severity(Severity.WARNING)

    def codes(self) -> set[str]:
        """Distinct diagnostic codes present."""
        return {d.code for d in self.diagnostics}

    def has(self, code: str) -> bool:
        """Whether any record carries ``code`` (test convenience)."""
        return any(d.code == code for d in self.diagnostics)

    @property
    def ok(self) -> bool:
        """True when the report contains no ERROR records."""
        return not self.errors()

    def format(self, min_severity: Severity = Severity.INFO) -> str:
        """Multi-line rendering, most severe first, stable within severity."""
        chosen = [d for d in self.diagnostics if d.severity >= min_severity]
        chosen.sort(key=lambda d: -int(d.severity))
        if not chosen:
            return "no diagnostics"
        return "\n".join(d.render() for d in chosen)

    def to_dicts(self) -> list[dict]:
        """JSON-friendly list of all records."""
        return [d.to_dict() for d in self.diagnostics]
