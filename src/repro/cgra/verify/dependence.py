"""Loop-carried dependence analysis and vectorization certificates.

The ROADMAP's next speed tier lowers verified schedules into vectorized
NumPy kernels over *time chunks*: instead of stepping one iteration at a
time, a chunked engine evaluates each op over ``[T]`` iterations at once.
That transformation is only legal for program regions free of
intra-chunk loop-carried dependence — an accumulator
(``gamma_r ← gamma_r + x``) needs iteration ``t``'s value before it can
produce ``t+1``'s, so it can never be widened.  This pass computes, per
schedule, a machine-checkable partition of the flat compiled program
into **chunkable** and **sequential** segments, emitted as a
JSON-round-trippable :class:`VectorizationCertificate` that the future
array-lowered engine consumes (exposed as
:attr:`repro.cgra.engine.CompiledProgram.certificate`).

The formulation is classic loop distribution (Allen–Kennedy):

* build a dependence multigraph over the computed entries of the merged
  program — distance-0 edges for same-iteration dataflow, distance-1
  edges from each resolved loop-carried source to every consumer of the
  PHI it feeds (see :func:`~repro.cgra.verify.effects.resolve_carried`);
* conservative refusals become self-edges: consumers of PHIs whose
  back-edge chain is unresolved (pure rotation) or whose observation
  distance exceeds one (stale pipelined reads through PHI-of-PHI
  chains) are pinned sequential — refusing is always sound;
* condense with Tarjan's SCC algorithm.  A component containing a
  carried edge (an accumulator cycle) or more than one node must run
  iteration-by-iteration; every other component is a pure feed-forward
  op that may be evaluated over a whole chunk, with forward carried
  dependences honoured by a one-slot shift of the source vector
  (``phi_vec = [incoming, src_vec[:-1]]``);
* topologically order the condensation (ties broken by program order)
  and merge consecutive components of the same kind into **maximal
  segments**.

IO follows the *pure-handler contract*: sensor reads/actuator writes
are chunk-safe only when their handlers are pure functions of the
iteration index (and address).  Ports with multiple writers, or ports
both read and written by the kernel (closed-loop feedback through the
bus), are forced sequential.  The runtime differential oracle
(:mod:`repro.cgra.verify.chunk_oracle`) executes certified segments
chunk-wise against the per-cycle interpreter and asserts bit-exactness.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field

from repro.cgra.dfg import DataflowGraph
from repro.cgra.scheduler import Schedule
from repro.cgra.verify.diagnostics import DiagnosticReport, Severity
from repro.cgra.verify.effects import EffectSummary, summarize_effects
from repro.errors import VerificationError

__all__ = [
    "PASS_ID",
    "Segment",
    "VectorizationCertificate",
    "CertificationResult",
    "certify_vectorization",
]

#: Diagnostic pass id of this analysis.
PASS_ID = "dependence"

_KINDS = ("chunkable", "sequential")


@dataclass(frozen=True)
class Segment:
    """One maximal run of the program with a uniform execution mode.

    ``node_ids`` is in dependence-topological order — evaluating a
    chunkable segment's ops in this order guarantees every operand
    vector (including shifted carried sources) is available.  Segments
    are ordered by the certificate, not by tick: the topological order
    may legally interleave ticks across segments.

    ``carried_in`` records the loop-carried registers the segment reads
    as ``(phi_id, source_id, distance)`` triples (``source_id`` is
    ``None`` when the register converges to a constant/parameter).
    """

    index: int
    kind: str
    node_ids: tuple[int, ...]
    first_tick: int
    last_tick: int
    io_read_ports: tuple[int, ...] = ()
    io_write_ports: tuple[int, ...] = ()
    carried_in: tuple[tuple[int, int | None, int], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise VerificationError(
                f"segment kind must be one of {_KINDS}, got {self.kind!r}"
            )

    @property
    def width(self) -> int:
        """Number of ops in the segment."""
        return len(self.node_ids)

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "index": self.index,
            "kind": self.kind,
            "node_ids": list(self.node_ids),
            "first_tick": self.first_tick,
            "last_tick": self.last_tick,
            "io_read_ports": list(self.io_read_ports),
            "io_write_ports": list(self.io_write_ports),
            "carried_in": [list(c) for c in self.carried_in],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Segment":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=int(data["index"]),
            kind=str(data["kind"]),
            node_ids=tuple(int(n) for n in data["node_ids"]),
            first_tick=int(data["first_tick"]),
            last_tick=int(data["last_tick"]),
            io_read_ports=tuple(int(p) for p in data.get("io_read_ports", ())),
            io_write_ports=tuple(int(p) for p in data.get("io_write_ports", ())),
            carried_in=tuple(
                (int(c[0]), None if c[1] is None else int(c[1]), int(c[2]))
                for c in data.get("carried_in", ())
            ),
        )


@dataclass(frozen=True)
class VectorizationCertificate:
    """Machine-checkable chunkability partition of one compiled program.

    The certificate is the seam the future array-lowered engine
    consumes: segments in order, each either ``"chunkable"`` (every op
    may be evaluated over a whole ``[T]`` chunk, carried reads satisfied
    by a one-slot shift) or ``"sequential"`` (must run per cycle).  The
    chunkable claim assumes the pure-IO contract — sensor/actuator
    handlers that are pure functions of the iteration index; closed-loop
    feedback through the bus is outside the certificate.
    """

    kernel: str
    n_ops: int
    segments: tuple[Segment, ...]
    version: int = 1

    def chunkable_segments(self) -> tuple[Segment, ...]:
        """Only the certified-chunkable segments."""
        return tuple(s for s in self.segments if s.kind == "chunkable")

    def certified_node_ids(self) -> frozenset[int]:
        """Node ids of every certified-chunkable op."""
        return frozenset(n for s in self.chunkable_segments() for n in s.node_ids)

    def is_certified(self, node_id: int) -> bool:
        """Whether one op is certified chunkable."""
        return node_id in self.certified_node_ids()

    def stats(self) -> dict:
        """Chunkability statistics (the BENCH_engine.json baseline)."""
        chunkable = self.chunkable_segments()
        chunkable_ops = sum(s.width for s in chunkable)
        return {
            "n_ops": self.n_ops,
            "n_segments": len(self.segments),
            "n_chunkable_segments": len(chunkable),
            "chunkable_ops": chunkable_ops,
            "chunkable_fraction": (chunkable_ops / self.n_ops) if self.n_ops else 0.0,
            "max_chunk_width": max((s.width for s in chunkable), default=0),
        }

    def to_dict(self) -> dict:
        """JSON-friendly representation (stats included for tooling)."""
        return {
            "version": self.version,
            "kernel": self.kernel,
            "n_ops": self.n_ops,
            "segments": [s.to_dict() for s in self.segments],
            "stats": self.stats(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VectorizationCertificate":
        """Inverse of :meth:`to_dict` (``stats`` is derived, not read)."""
        version = int(data.get("version", 1))
        if version != 1:
            raise VerificationError(
                f"unsupported vectorization-certificate version {version}"
            )
        return cls(
            kernel=str(data["kernel"]),
            n_ops=int(data["n_ops"]),
            segments=tuple(Segment.from_dict(s) for s in data["segments"]),
            version=version,
        )

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "VectorizationCertificate":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


@dataclass
class CertificationResult:
    """Certificate plus the diagnostics and effects that justify it."""

    certificate: VectorizationCertificate
    report: DiagnosticReport = field(default_factory=DiagnosticReport)
    effects: EffectSummary | None = None


def _tarjan_scc(order: list[int], adj: dict[int, set[int]]) -> list[list[int]]:
    """Iterative Tarjan SCC; components in reverse-topological order."""
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[list[int]] = []
    counter = [0]

    for root in order:
        if root in index:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_i = work[-1]
            if edge_i == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            successors = sorted(adj.get(node, ()))
            advanced = False
            while edge_i < len(successors):
                succ = successors[edge_i]
                edge_i += 1
                if succ not in index:
                    work[-1] = (node, edge_i)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _node_label(graph: DataflowGraph, node_id: int) -> str:
    node = graph.node(node_id)
    name = f" {node.name!r}" if node.name else ""
    return f"%{node_id} ({node.op.value}{name})"


def certify_vectorization(schedule: Schedule) -> CertificationResult:
    """Partition one schedule's compiled program into certified segments.

    Returns the :class:`VectorizationCertificate` together with the
    INFO-severity diagnostics explaining every refusal (accumulator
    cycles, unresolved/stale carried reads, IO port conflicts) under
    pass id :data:`PASS_ID`.  Refusals are not defects — a fully
    sequential program is simply certified as one sequential segment.
    """
    report = DiagnosticReport()
    effects = summarize_effects(schedule)
    graph = schedule.graph
    carried_map = {c.phi_id: c for c in effects.carried}
    entry_of = {e.node_id: e for e in effects.ops}
    program_order = [e.node_id for e in effects.ops]

    adj: dict[int, set[int]] = {nid: set() for nid in program_order}
    carried_pairs: set[tuple[int, int]] = set()
    pinned_sequential: set[int] = set()

    def pin(node_id: int) -> None:
        adj[node_id].add(node_id)
        carried_pairs.add((node_id, node_id))
        pinned_sequential.add(node_id)

    for entry in effects.ops:
        for operand in entry.reads:
            adj[operand].add(entry.node_id)
        for phi_id in entry.phi_reads:
            reg = carried_map[phi_id]
            if not reg.resolved:
                pin(entry.node_id)
                report.emit(
                    Severity.INFO, PASS_ID, "phi-unresolved",
                    f"{_node_label(graph, entry.node_id)} reads carried register "
                    f"{_node_label(graph, phi_id)} with no defining computation "
                    f"({reg.reason}); pinned sequential",
                    node_id=entry.node_id, tick=entry.tick,
                )
            elif reg.distance != 1:
                pin(entry.node_id)
                report.emit(
                    Severity.INFO, PASS_ID, "stale-carried-read",
                    f"{_node_label(graph, entry.node_id)} observes "
                    f"{_node_label(graph, reg.source)} at distance {reg.distance} "
                    f"through carried register {_node_label(graph, phi_id)}; "
                    "only distance-1 reads are chunkable — pinned sequential",
                    node_id=entry.node_id, tick=entry.tick,
                )
            elif reg.source_kind == "computed":
                adj[reg.source].add(entry.node_id)
                carried_pairs.add((reg.source, entry.node_id))
            # const/param sources are iteration invariant: no dependence.

    # IO port conflicts break the pure-handler contract's independence
    # assumptions: serialize all conflicting accessors.
    readers_by_port: dict[int, list[int]] = {}
    writers_by_port: dict[int, list[int]] = {}
    for entry in effects.ops:
        for port in entry.io_reads:
            readers_by_port.setdefault(port, []).append(entry.node_id)
        for port in entry.io_writes:
            writers_by_port.setdefault(port, []).append(entry.node_id)
    for port, writers in sorted(writers_by_port.items()):
        conflict: list[int] = []
        if len(writers) > 1:
            conflict = list(writers)
            report.emit(
                Severity.INFO, PASS_ID, "io-multi-writer",
                f"port {port} has {len(writers)} writers — chunked execution "
                "would reorder their interleaving; pinned sequential",
            )
        if port in readers_by_port:
            conflict = sorted(set(conflict) | set(writers) | set(readers_by_port[port]))
            report.emit(
                Severity.INFO, PASS_ID, "io-read-write-port",
                f"port {port} is both read and written by the kernel (bus "
                "feedback outside the pure-handler contract); pinned sequential",
            )
        for a in conflict:
            for b in conflict:
                if a != b:
                    adj[a].add(b)
            pinned_sequential.add(a)
            carried_pairs.add((a, a))
            adj[a].add(a)

    components = _tarjan_scc(program_order, adj)
    comp_of: dict[int, int] = {}
    for comp_index, members in enumerate(components):
        for member in members:
            comp_of[member] = comp_index

    comp_kind: list[str] = []
    for comp_index, members in enumerate(components):
        member_set = set(members)
        has_cycle = len(members) > 1 or any(
            (u, v) in carried_pairs
            for u in members for v in adj.get(u, ())
            if v in member_set
        )
        comp_kind.append("sequential" if has_cycle else "chunkable")
        if has_cycle and not member_set & pinned_sequential:
            names = ", ".join(
                _node_label(graph, nid)
                for nid in sorted(members, key=lambda n: (entry_of[n].tick, n))
            )
            report.emit(
                Severity.INFO, PASS_ID, "carried-cycle",
                f"loop-carried dependence cycle through {names}: "
                "must execute iteration-by-iteration",
                node_id=min(members),
            )

    # Topological order of the condensation, ties broken by program
    # position so the certificate is deterministic and tick-faithful
    # wherever dependences allow.
    comp_edges: dict[int, set[int]] = {i: set() for i in range(len(components))}
    indegree = [0] * len(components)
    for u, targets in adj.items():
        for v in targets:
            cu, cv = comp_of[u], comp_of[v]
            if cu != cv and cv not in comp_edges[cu]:
                comp_edges[cu].add(cv)
                indegree[cv] += 1
    position = {nid: i for i, nid in enumerate(program_order)}

    def comp_key(comp_index: int) -> tuple[int, int]:
        members = components[comp_index]
        return (min(position[m] for m in members), comp_index)

    heap = [
        (comp_key(i), i) for i in range(len(components)) if indegree[i] == 0
    ]
    heapq.heapify(heap)
    topo: list[int] = []
    while heap:
        _key, comp_index = heapq.heappop(heap)
        topo.append(comp_index)
        for succ in sorted(comp_edges[comp_index]):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, (comp_key(succ), succ))
    if len(topo) != len(components):  # pragma: no cover - SCC DAG is acyclic
        raise VerificationError("condensation ordering failed: cycle among SCCs")

    segments: list[Segment] = []
    run: list[int] = []
    run_kind: str | None = None

    def close_run() -> None:
        if not run:
            return
        node_ids = tuple(run)
        entries = [entry_of[n] for n in node_ids]
        carried_in = sorted(
            {
                (
                    phi_id,
                    carried_map[phi_id].source
                    if carried_map[phi_id].source_kind == "computed"
                    else None,
                    carried_map[phi_id].distance,
                )
                for e in entries
                for phi_id in e.phi_reads
            },
            key=lambda c: c[0],
        )
        segments.append(
            Segment(
                index=len(segments),
                kind=run_kind or "sequential",
                node_ids=node_ids,
                first_tick=min(e.tick for e in entries),
                last_tick=max(e.tick for e in entries),
                io_read_ports=tuple(sorted({p for e in entries for p in e.io_reads})),
                io_write_ports=tuple(sorted({p for e in entries for p in e.io_writes})),
                carried_in=tuple(carried_in),
            )
        )
        run.clear()

    for comp_index in topo:
        kind = comp_kind[comp_index]
        if kind != run_kind:
            close_run()
            run_kind = kind
        run.extend(sorted(components[comp_index], key=lambda n: position[n]))
    close_run()

    certificate = VectorizationCertificate(
        kernel=graph.name,
        n_ops=len(effects.ops),
        segments=tuple(segments),
    )
    return CertificationResult(certificate=certificate, report=report, effects=effects)
