"""Pass 2: semantic linting of mini-C model sources.

The frontend's lowering pass raises on the *first* semantic problem it
meets; the linter instead walks the AST once and reports **every**
finding as a :class:`~repro.cgra.verify.diagnostics.Diagnostic` with
source line/column — the compiler-style experience the paper's "changes
... available on the experimental setup in seconds" iteration loop
needs.

Checks (codes in brackets):

* use of undeclared variables/arrays, assignment to undeclared names
  [``use-before-def``], scalar/array kind confusion [``kind-mismatch``];
* redeclaration in the same scope [``redeclaration``] and shadowing of
  an outer binding or parameter [``shadowing``];
* declared-but-never-read variables and parameters
  [``unused-variable``, ``unused-parameter``];
* unknown intrinsics [``unknown-intrinsic``] and wrong intrinsic arity
  [``intrinsic-arity``];
* unsupported constructs: nested/misplaced ``while`` loops
  [``nested-loop``], a function without exactly one steady-state
  ``while (1)`` loop [``no-steady-loop``], IO intrinsics outside the
  loop [``io-outside-loop``] or inside ``if``/``else`` branches
  [``io-in-conditional``] (the CGRA predicates values, not side
  effects).

The linter is purely syntactic/scoping — it does not fold constants, so
it accepts anything the lowering pass accepts and stays silent on the
shipped kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cgra.frontend.astnodes import (
    ArrayAssignment,
    ArrayDeclaration,
    ArrayRef,
    Assignment,
    BinOp,
    Call,
    Declaration,
    Expr,
    ExprStatement,
    ForLoop,
    Function,
    IfStatement,
    NumberLit,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    VarRef,
    WhileLoop,
)
from repro.cgra.frontend.parser import parse_program
from repro.cgra.verify.diagnostics import DiagnosticReport, Severity, SourceLocation
from repro.errors import FrontendError

__all__ = ["lint_source", "lint_program", "INTRINSICS", "IO_INTRINSICS"]

_PASS = "lint"

#: Intrinsic name → arity.
INTRINSICS = {
    "sqrt": 1,
    "fmin": 2,
    "fmax": 2,
    "read_sensor": 1,
    "read_sensor2": 2,
    "write_actuator": 2,
    "pipeline_barrier": 0,
}

#: Intrinsics that touch the SensorAccess module (side effects).
IO_INTRINSICS = frozenset(
    {"read_sensor", "read_sensor2", "write_actuator", "pipeline_barrier"}
)


@dataclass
class _Binding:
    """One declared name within a scope."""

    name: str
    kind: str  # "param" | "var" | "array" | "loop"
    line: int
    col: int
    read: bool = False
    written: bool = False


@dataclass
class _Scope:
    bindings: dict[str, _Binding] = field(default_factory=dict)


class _Linter:
    def __init__(self) -> None:
        self.report = DiagnosticReport()
        self.scopes: list[_Scope] = []
        self.in_loop = False
        self.cond_depth = 0

    # -- scope plumbing ------------------------------------------------

    def _lookup(self, name: str) -> _Binding | None:
        for scope in reversed(self.scopes):
            if name in scope.bindings:
                return scope.bindings[name]
        return None

    def _declare(self, name: str, kind: str, line: int, col: int) -> _Binding:
        current = self.scopes[-1]
        if name in current.bindings:
            self.report.emit(
                Severity.ERROR, _PASS, "redeclaration",
                f"redeclaration of {name!r} (first declared at line "
                f"{current.bindings[name].line})",
                location=SourceLocation(line, col),
            )
        elif self._lookup(name) is not None:
            outer = self._lookup(name)
            what = "parameter" if outer.kind == "param" else "variable"
            self.report.emit(
                Severity.WARNING, _PASS, "shadowing",
                f"{name!r} shadows the {what} declared at line {outer.line}",
                location=SourceLocation(line, col),
            )
        binding = _Binding(name=name, kind=kind, line=line, col=col)
        current.bindings[name] = binding
        return binding

    def _push(self) -> None:
        self.scopes.append(_Scope())

    def _pop(self) -> None:
        scope = self.scopes.pop()
        for b in scope.bindings.values():
            if b.read or b.kind == "loop":
                continue
            code = "unused-parameter" if b.kind == "param" else "unused-variable"
            what = "parameter" if b.kind == "param" else (
                "array" if b.kind == "array" else "variable"
            )
            self.report.emit(
                Severity.WARNING, _PASS, code,
                f"{what} {b.name!r} is never read",
                location=SourceLocation(b.line, b.col),
            )

    def _error(self, code: str, message: str, line: int, col: int) -> None:
        self.report.emit(
            Severity.ERROR, _PASS, code, message, location=SourceLocation(line, col)
        )

    # -- expressions ---------------------------------------------------

    def _use(self, name: str, line: int, col: int, as_array: bool) -> None:
        binding = self._lookup(name)
        if binding is None:
            kindword = "array" if as_array else "variable"
            self._error(
                "use-before-def", f"use of undeclared {kindword} {name!r}", line, col
            )
            return
        binding.read = True
        if as_array and binding.kind not in ("array",):
            self._error("kind-mismatch", f"{name!r} is not an array", line, col)
        if not as_array and binding.kind == "array":
            self._error("kind-mismatch", f"{name!r} is an array; index it", line, col)

    def _walk_expr(self, expr: Expr) -> None:
        if isinstance(expr, NumberLit):
            return
        if isinstance(expr, VarRef):
            self._use(expr.name, expr.line, expr.col, as_array=False)
            return
        if isinstance(expr, ArrayRef):
            self._use(expr.name, expr.line, expr.col, as_array=True)
            self._walk_expr(expr.index)
            return
        if isinstance(expr, UnaryOp):
            self._walk_expr(expr.operand)
            return
        if isinstance(expr, BinOp):
            self._walk_expr(expr.left)
            self._walk_expr(expr.right)
            return
        if isinstance(expr, Ternary):
            self._walk_expr(expr.cond)
            self._walk_expr(expr.if_true)
            self._walk_expr(expr.if_false)
            return
        if isinstance(expr, Call):
            self._walk_call(expr)
            return

    def _walk_call(self, call: Call) -> None:
        if call.name not in INTRINSICS:
            self._error(
                "unknown-intrinsic", f"unknown intrinsic {call.name!r}",
                call.line, call.col,
            )
        else:
            arity = INTRINSICS[call.name]
            if len(call.args) != arity:
                self._error(
                    "intrinsic-arity",
                    f"{call.name}() takes {arity} argument(s), got {len(call.args)}",
                    call.line, call.col,
                )
            if call.name in IO_INTRINSICS:
                if not self.in_loop:
                    self._error(
                        "io-outside-loop",
                        f"{call.name}() is only allowed inside the while(1) loop",
                        call.line, call.col,
                    )
                elif self.cond_depth > 0:
                    self._error(
                        "io-in-conditional",
                        f"{call.name}() is not allowed inside if/else — the CGRA "
                        "predicates values, not side effects; hoist the IO out "
                        "of the conditional",
                        call.line, call.col,
                    )
        for arg in call.args:
            self._walk_expr(arg)

    # -- statements ----------------------------------------------------

    def _walk_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Declaration):
            self._walk_expr(stmt.init)
            self._declare(stmt.name, "var", stmt.line, stmt.col)
            return
        if isinstance(stmt, ArrayDeclaration):
            self._walk_expr(stmt.size)
            self._walk_expr(stmt.init)
            self._declare(stmt.name, "array", stmt.line, stmt.col)
            return
        if isinstance(stmt, Assignment):
            self._walk_expr(stmt.value)
            binding = self._lookup(stmt.name)
            if binding is None:
                self._error(
                    "use-before-def",
                    f"assignment to undeclared variable {stmt.name!r}",
                    stmt.line, stmt.col,
                )
                return
            binding.written = True
            if binding.kind == "array":
                self._error(
                    "kind-mismatch", f"{stmt.name!r} is an array; index it",
                    stmt.line, stmt.col,
                )
            return
        if isinstance(stmt, ArrayAssignment):
            self._walk_expr(stmt.index)
            self._walk_expr(stmt.value)
            binding = self._lookup(stmt.name)
            if binding is None:
                self._error(
                    "use-before-def",
                    f"assignment to undeclared array {stmt.name!r}",
                    stmt.line, stmt.col,
                )
                return
            binding.written = True
            if binding.kind != "array":
                self._error(
                    "kind-mismatch", f"{stmt.name!r} is not an array",
                    stmt.line, stmt.col,
                )
            return
        if isinstance(stmt, ExprStatement):
            self._walk_expr(stmt.expr)
            return
        if isinstance(stmt, ForLoop):
            self._walk_expr(stmt.start)
            self._walk_expr(stmt.limit)
            self._walk_expr(stmt.step)
            self._push()
            self._declare(stmt.var, "loop", stmt.line, stmt.col)
            for inner in stmt.body:
                self._walk_stmt(inner)
            self._pop()
            return
        if isinstance(stmt, IfStatement):
            self._walk_expr(stmt.cond)
            self.cond_depth += 1
            for body in (stmt.then_body, stmt.else_body):
                self._push()
                for inner in body:
                    self._walk_stmt(inner)
                self._pop()
            self.cond_depth -= 1
            return
        if isinstance(stmt, WhileLoop):
            # Valid only as a direct child of the function body; the
            # function walker handles that case before calling here.
            self._error(
                "nested-loop",
                "while loops may only appear once, at function top level",
                stmt.line, stmt.col,
            )
            for inner in stmt.body:
                self._walk_stmt(inner)
            return

    # -- functions -----------------------------------------------------

    def _walk_function(self, fn: Function) -> None:
        self._push()
        for i, p in enumerate(fn.params):
            if p in fn.params[:i]:
                self._error(
                    "redeclaration", f"duplicate parameter {p!r}", fn.line, fn.col
                )
                continue
            self._declare(p, "param", fn.line, fn.col)
        loops = [s for s in fn.body if isinstance(s, WhileLoop)]
        if len(loops) != 1:
            self._error(
                "no-steady-loop",
                f"function {fn.name!r} must contain exactly one while(1) loop, "
                f"found {len(loops)}",
                fn.line, fn.col,
            )
        for stmt in fn.body:
            if isinstance(stmt, WhileLoop):
                if self.in_loop or (loops and stmt is not loops[0]):
                    self._error(
                        "nested-loop",
                        "only one steady-state while(1) loop is supported",
                        stmt.line, stmt.col,
                    )
                self.in_loop = True
                for inner in stmt.body:
                    self._walk_stmt(inner)
                self.in_loop = False
            else:
                self._walk_stmt(stmt)
        self._pop()

    def run(self, program: Program) -> DiagnosticReport:
        for fn in program.functions:
            self._walk_function(fn)
        return self.report


def lint_program(program: Program) -> DiagnosticReport:
    """Lint a parsed program; returns the full diagnostic report."""
    return _Linter().run(program)


def lint_source(source: str) -> DiagnosticReport:
    """Parse and lint mini-C ``source``.

    Lex/parse failures become a single ``syntax-error`` diagnostic (the
    parser stops at the first syntax error by construction); semantic
    findings are collected exhaustively.
    """
    try:
        program = parse_program(source)
    except FrontendError as exc:
        report = DiagnosticReport()
        report.emit(Severity.ERROR, _PASS, "syntax-error", str(exc))
        return report
    return lint_program(program)
