"""Per-op read/write effect summaries of a compiled CGRA program.

The dependence pass (:mod:`repro.cgra.verify.dependence`) needs to know,
for every entry of the flat compiled program
(:func:`repro.cgra.engine.merged_entries`), exactly which register slots
it reads and writes, which of those reads are *loop-carried* (PHI
registers latched at the end of the previous iteration), and which
ADC/DAC/IO ports it touches.  This module derives those summaries
statically from the dataflow graph plus the merged program — no
execution involved.

The subtle part is resolving **where a loop-carried read actually comes
from**.  PHI registers latch sequentially at iteration end, in graph
order, reading *live* register slots (see ``_CodeEmitter`` in
:mod:`repro.cgra.engine`): a PHI whose back edge is another PHI observes
that PHI's *new* value when it latches earlier in the sequence and its
*previous-iteration* value when it latches later.  :func:`resolve_carried`
walks each PHI chain with those latch-order semantics and reports the
terminal non-PHI source together with the observation **distance** — a
read of the PHI during iteration ``t`` observes the source value
computed in iteration ``t − distance``.  Distance-1 reads of a computed
source are the shape a chunked (vectorized) execution can honour with a
one-slot shift; everything else must stay sequential.

Everything here is a frozen dataclass with a ``to_dict``/``from_dict``
JSON round trip, so effect summaries can ship inside the
:class:`~repro.cgra.verify.dependence.VectorizationCertificate` tooling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cgra.dfg import DataflowGraph
from repro.cgra.ops import Op
from repro.cgra.scheduler import Schedule
from repro.errors import VerificationError

__all__ = [
    "OpEffects",
    "CarriedRegister",
    "EffectSummary",
    "resolve_carried",
    "summarize_effects",
]


@dataclass(frozen=True)
class OpEffects:
    """Effect summary of one computed entry of the flat program.

    Attributes
    ----------
    node_id / op / tick:
        Identity of the entry (``op`` is the :class:`~repro.cgra.ops.Op`
        name, e.g. ``"FADD"``).
    reads:
        Same-iteration register reads — operands computed earlier in the
        same program order.
    const_reads:
        Reads of preloaded ``CONST``/``PARAM`` slots (iteration
        invariant).
    phi_reads:
        Reads of loop-carried ``PHI`` register slots (values latched at
        the end of the previous iteration).
    writes:
        Register slots written; ``(node_id,)`` for value-producing ops,
        empty for ``ACTUATOR_WRITE`` (its only effect is the port write).
    io_reads / io_writes:
        Sensor ports read / actuator ports written.
    """

    node_id: int
    op: str
    tick: int
    reads: tuple[int, ...] = ()
    const_reads: tuple[int, ...] = ()
    phi_reads: tuple[int, ...] = ()
    writes: tuple[int, ...] = ()
    io_reads: tuple[int, ...] = ()
    io_writes: tuple[int, ...] = ()

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "node_id": self.node_id,
            "op": self.op,
            "tick": self.tick,
            "reads": list(self.reads),
            "const_reads": list(self.const_reads),
            "phi_reads": list(self.phi_reads),
            "writes": list(self.writes),
            "io_reads": list(self.io_reads),
            "io_writes": list(self.io_writes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OpEffects":
        """Inverse of :meth:`to_dict`."""
        return cls(
            node_id=int(data["node_id"]),
            op=str(data["op"]),
            tick=int(data["tick"]),
            reads=tuple(data.get("reads", ())),
            const_reads=tuple(data.get("const_reads", ())),
            phi_reads=tuple(data.get("phi_reads", ())),
            writes=tuple(data.get("writes", ())),
            io_reads=tuple(data.get("io_reads", ())),
            io_writes=tuple(data.get("io_writes", ())),
        )


@dataclass(frozen=True)
class CarriedRegister:
    """Resolved loop-carried dependence of one PHI register.

    ``source_kind`` is ``"computed"`` (the terminal source is a computed
    program entry), ``"const"``/``"param"`` (the register converges to a
    preloaded value), or ``"unresolved"`` (the back-edge chain is a pure
    PHI cycle — a rotation network with no defining computation).

    ``distance`` is the observation distance: a read of the PHI during
    iteration ``t`` observes the source value of iteration
    ``t − distance`` (≥ 1; 0 only when unresolved).  ``via`` lists the
    intermediate PHIs the latch chain walks through.
    """

    phi_id: int
    name: str
    back_edge: int
    source: int | None
    source_kind: str
    distance: int
    via: tuple[int, ...] = ()
    reason: str = ""

    @property
    def resolved(self) -> bool:
        """Whether the chain terminates in a non-PHI definition."""
        return self.source_kind != "unresolved"

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        out: dict = {
            "phi_id": self.phi_id,
            "name": self.name,
            "back_edge": self.back_edge,
            "source": self.source,
            "source_kind": self.source_kind,
            "distance": self.distance,
            "via": list(self.via),
        }
        if self.reason:
            out["reason"] = self.reason
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CarriedRegister":
        """Inverse of :meth:`to_dict`."""
        source = data.get("source")
        return cls(
            phi_id=int(data["phi_id"]),
            name=str(data.get("name", "")),
            back_edge=int(data["back_edge"]),
            source=None if source is None else int(source),
            source_kind=str(data["source_kind"]),
            distance=int(data["distance"]),
            via=tuple(data.get("via", ())),
            reason=str(data.get("reason", "")),
        )


@dataclass(frozen=True)
class EffectSummary:
    """Whole-program effect summary of one schedule.

    ``ops`` follows the merged program order (tick order, ties by node
    id) — the order both engines execute.  ``carried`` is in latch order
    (ascending PHI node id).
    """

    kernel: str
    schedule_length: int
    ops: tuple[OpEffects, ...]
    carried: tuple[CarriedRegister, ...]

    def op(self, node_id: int) -> OpEffects:
        """Effects of one entry by node id."""
        for effects in self.ops:
            if effects.node_id == node_id:
                return effects
        raise VerificationError(f"no computed entry for node {node_id}")

    def carried_for(self, phi_id: int) -> CarriedRegister:
        """Resolved carried dependence of one PHI by node id."""
        for reg in self.carried:
            if reg.phi_id == phi_id:
                return reg
        raise VerificationError(f"no loop-carried register {phi_id}")

    def io_read_ports(self) -> tuple[int, ...]:
        """All sensor ports the program reads, sorted."""
        return tuple(sorted({p for e in self.ops for p in e.io_reads}))

    def io_write_ports(self) -> tuple[int, ...]:
        """All actuator ports the program writes, sorted."""
        return tuple(sorted({p for e in self.ops for p in e.io_writes}))

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "kernel": self.kernel,
            "schedule_length": self.schedule_length,
            "ops": [e.to_dict() for e in self.ops],
            "carried": [c.to_dict() for c in self.carried],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EffectSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kernel=str(data["kernel"]),
            schedule_length=int(data["schedule_length"]),
            ops=tuple(OpEffects.from_dict(e) for e in data["ops"]),
            carried=tuple(CarriedRegister.from_dict(c) for c in data["carried"]),
        )


def resolve_carried(graph: DataflowGraph) -> dict[int, CarriedRegister]:
    """Resolve every PHI's back-edge chain with latch-order semantics.

    Latches run sequentially in ascending node-id order.  Walking from a
    PHI toward its defining computation, stepping through an intermediate
    PHI that latches *later* in the sequence (larger node id) crosses one
    extra iteration boundary; stepping through one that already latched
    (smaller node id) observes its freshly latched value and keeps the
    distance unchanged.  A chain that revisits a PHI is a pure rotation
    with no defining computation — reported unresolved.
    """
    out: dict[int, CarriedRegister] = {}
    for phi in graph.phis():
        distance = 1
        via: list[int] = []
        visited = {phi.node_id}
        last = phi
        current = graph.node(phi.back_edge)  # back edge is bound (validated)
        unresolved_reason = ""
        while current.op is Op.PHI:
            if current.node_id in visited:
                unresolved_reason = (
                    f"back-edge chain of %{phi.node_id} revisits %{current.node_id}: "
                    "pure PHI rotation with no defining computation"
                )
                break
            if current.node_id > last.node_id:
                distance += 1  # reads the not-yet-latched (previous-iteration) value
            via.append(current.node_id)
            visited.add(current.node_id)
            last = current
            current = graph.node(current.back_edge)
        if unresolved_reason:
            out[phi.node_id] = CarriedRegister(
                phi_id=phi.node_id,
                name=phi.name,
                back_edge=phi.back_edge,
                source=None,
                source_kind="unresolved",
                distance=0,
                via=tuple(via),
                reason=unresolved_reason,
            )
            continue
        if current.op is Op.CONST:
            kind = "const"
        elif current.op is Op.PARAM:
            kind = "param"
        else:
            kind = "computed"
        out[phi.node_id] = CarriedRegister(
            phi_id=phi.node_id,
            name=phi.name,
            back_edge=phi.back_edge,
            source=current.node_id,
            source_kind=kind,
            distance=distance,
            via=tuple(via),
        )
    return out


def summarize_effects(schedule: Schedule) -> EffectSummary:
    """Derive the whole-program effect summary of one verified schedule."""
    from repro.cgra.engine import merged_entries

    graph = schedule.graph
    entries = merged_entries(schedule)
    computed = {nid for _tick, _op, nid, _operands, _io in entries}
    ops: list[OpEffects] = []
    for tick, op, nid, operands, io_id in entries:
        reads: list[int] = []
        const_reads: list[int] = []
        phi_reads: list[int] = []
        for operand in operands:
            if operand in computed:
                reads.append(operand)
            elif graph.node(operand).op is Op.PHI:
                phi_reads.append(operand)
            else:
                const_reads.append(operand)
        io_reads: tuple[int, ...] = ()
        io_writes: tuple[int, ...] = ()
        writes: tuple[int, ...] = (nid,)
        if op in (Op.SENSOR_READ, Op.SENSOR_READ_ADDR):
            io_reads = (int(io_id),)
        elif op is Op.ACTUATOR_WRITE:
            io_writes = (int(io_id),)
            writes = ()
        ops.append(
            OpEffects(
                node_id=nid,
                op=op.name,
                tick=tick,
                reads=tuple(reads),
                const_reads=tuple(const_reads),
                phi_reads=tuple(phi_reads),
                writes=writes,
                io_reads=io_reads,
                io_writes=io_writes,
            )
        )
    carried = resolve_carried(graph)
    return EffectSummary(
        kernel=graph.name,
        schedule_length=schedule.length,
        ops=tuple(ops),
        carried=tuple(carried[pid] for pid in sorted(carried)),
    )
