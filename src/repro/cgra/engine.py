"""Compiled fast-path execution engine for verified schedules.

The cycle-accurate interpreter (:class:`~repro.cgra.executor.CgraExecutor`)
pays enum dispatch, dict register lookups and per-op ``float(f32(...))``
boxing for every operation.  This module lowers a verified
:class:`~repro.cgra.scheduler.Schedule` into a flat, pre-resolved
program once per kernel:

* operands are resolved to **dense register-array indices** at load time
  (node ids are dense, so the register file is a plain Python list);
* op dispatch disappears — the tick-ordered program is emitted as Python
  source and ``compile()``-ed once, with every operand reference inlined
  as a local variable;
* sensor/actuator bindings are hoisted to function arguments;
* per-op float32 rounding is preserved: each value is held as a
  ``numpy.float32`` scalar, and binary64 operations on binary32 inputs
  round identically to the interpreter's ``float(f32(f32(a) op f32(b)))``
  (double rounding is exact for +,−,×,÷,√ because 53 ≥ 2·24 + 2).

Two scalar variants are generated: ``step_fast`` stores only the PHI
(loop-carried) registers back to the register file, ``step_traced``
additionally stores every computed node.  Running ``n`` iterations as
``(n−1)·fast + 1·traced`` leaves the register file in exactly the state
the interpreter produces — non-PHI registers only ever hold the most
recent iteration's values.

Numeric faults are detected by running the compiled step under
``numpy.errstate(over="raise", invalid="raise", divide="raise")``:
the interpreter's per-op ``isfinite`` check can only fail when an
operation signals overflow or invalid, so both engines fault on the
same iteration.  Division by zero and sqrt of a negative keep their
explicit guards (identical messages to the interpreter).

**Batched lockstep execution** reuses the same codegen with ``[B]``-shaped
NumPy array registers: one compiled program advances B independent
scenarios per call (:class:`BatchedCgraExecutor` +
:class:`~repro.cgra.sensor.BatchSensorBus`).  Elementwise float32 array
arithmetic is bit-identical per lane to the scalar engine.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.cgra.context import build_context_images
from repro.cgra.dfg import DataflowGraph
from repro.cgra.ops import Op
from repro.cgra.scheduler import Schedule
from repro.errors import ExecutionError
from repro.obs import get_registry
from repro.obs._state import STATE as _OBS
from repro.obs.profile import record_program

__all__ = [
    "CompiledProgram",
    "compile_program",
    "merged_entries",
    "BatchedCgraExecutor",
    "set_default_engine",
    "get_default_engine",
    "resolve_engine",
    "clear_program_cache",
]

_PROGRAMS_COMPILED = get_registry().counter(
    "cgra_engine_programs_compiled_total", "kernels lowered by the compiled engine"
)
_ENGINE_ITERATIONS = get_registry().counter(
    "cgra_engine_iterations_total", "iterations executed, by engine"
)
_ITERS_PER_SECOND = get_registry().gauge(
    "cgra_iterations_per_second", "most recent bulk-run iteration throughput"
)

_ENGINES = ("interpreted", "compiled", "vector", "auto")

#: Session-wide default used when an executor is constructed with
#: ``engine=None`` (the CLI's ``--engine`` flag sets this).
_DEFAULT_ENGINE = "interpreted"


def set_default_engine(name: str) -> None:
    """Set the engine used when executors are built with ``engine=None``."""
    global _DEFAULT_ENGINE
    if name not in _ENGINES:
        raise ExecutionError(f"engine must be one of {_ENGINES}, got {name!r}")
    _DEFAULT_ENGINE = name


def get_default_engine() -> str:
    """The session-wide default engine."""
    return _DEFAULT_ENGINE


def resolve_engine(engine: str | None) -> str:
    """Validate an ``engine=`` argument; ``None`` means the session default."""
    if engine is None:
        return _DEFAULT_ENGINE
    if engine not in _ENGINES:
        raise ExecutionError(f"engine must be one of {_ENGINES}, got {engine!r}")
    return engine


def merged_entries(schedule: Schedule) -> list:
    """All context-image entries merged into one tick-ordered program.

    Same ordering as the interpreter: global tick order, ties broken by
    node id (tied ops are independent on legal schedules).  Each entry
    is ``(tick, Op, node_id, operands, io_id)`` — the flat program the
    static analyses in :mod:`repro.cgra.verify` consume.
    """
    entries = []
    for image in build_context_images(schedule).values():
        for e in image.sorted_entries():
            entries.append((e.tick, Op(e.op), e.node_id, tuple(e.operands), e.io_id))
    entries.sort(key=lambda e: (e[0], e[2]))
    return entries


#: Backwards-compatible private alias (public since the dependence pass).
_merged_entries = merged_entries


class _CodeEmitter:
    """Generates the Python source of one step function."""

    def __init__(self, graph: DataflowGraph, entries: list, batched: bool) -> None:
        self.graph = graph
        self.entries = entries
        self.batched = batched
        self._loads: dict[int, str] = {}
        self._computed: set[int] = set()

    def _operand(self, node_id: int) -> str:
        if node_id in self._computed:
            return f"v{node_id}"
        node = self.graph.node(node_id)
        if not node.is_zero_time():
            raise ExecutionError(
                f"node {node_id} is consumed before it is computed — "
                "schedule is illegal for the compiled engine"
            )
        self._loads.setdefault(node_id, f"z{node_id} = R[{node_id}]")
        return f"z{node_id}"

    def _emit_entry(self, body: list, tick: int, op: Op, nid: int,
                    operands: tuple, io_id: int | None) -> None:
        if op is Op.SENSOR_READ:
            body.append(f"v{nid} = _ft(read({io_id}))")
        elif op is Op.SENSOR_READ_ADDR:
            body.append(f"v{nid} = _ft(read_addr({io_id}, {self._operand(operands[0])}))")
        elif op is Op.ACTUATOR_WRITE:
            body.append(f"write({io_id}, {self._operand(operands[0])})")
        elif op is Op.FDIV:
            a, b = (self._operand(o) for o in operands)
            # Batched: ``not b.all()`` ≡ ``any(b == 0.0)`` without the
            # temporary bool array (0.0 and -0.0 are falsy, NaN is
            # truthy, matching ``NaN == 0.0 → False`` elementwise) —
            # one C reduction instead of compare + any.
            zero = f"not {b}.all()" if self.batched else f"{b} == 0.0"
            body.append(f"if {zero}:")
            body.append(f"    raise _EE('division by zero in node {nid}')")
            body.append(f"v{nid} = {a} / {b}")
        elif op is Op.FSQRT:
            a = self._operand(operands[0])
            # Batched: keep the elementwise compare (a min-reduction
            # would miss a negative lane when another lane holds NaN);
            # the ``.any()`` method skips ``np.any``'s dispatch overhead.
            neg = f"({a} < 0.0).any()" if self.batched else f"{a} < 0.0"
            body.append(f"if {neg}:")
            body.append(f"    raise _EE('sqrt of negative value in node {nid}')")
            body.append(f"v{nid} = _sqrt({a})")
        elif op in (Op.FADD, Op.FSUB, Op.FMUL):
            sym = {Op.FADD: "+", Op.FSUB: "-", Op.FMUL: "*"}[op]
            a, b = (self._operand(o) for o in operands)
            body.append(f"v{nid} = {a} {sym} {b}")
        elif op is Op.FNEG:
            body.append(f"v{nid} = -{self._operand(operands[0])}")
        elif op is Op.FMIN:
            a, b = (self._operand(o) for o in operands)
            if self.batched:
                body.append(f"v{nid} = _minimum({a}, {b})")
            else:
                # min(a, b) returns a on ties — keep that argument order.
                body.append(f"v{nid} = {b} if {b} < {a} else {a}")
        elif op is Op.FMAX:
            a, b = (self._operand(o) for o in operands)
            if self.batched:
                body.append(f"v{nid} = _maximum({a}, {b})")
            else:
                body.append(f"v{nid} = {b} if {a} < {b} else {a}")
        elif op in (Op.CMP_LT, Op.CMP_LE):
            sym = "<" if op is Op.CMP_LT else "<="
            a, b = (self._operand(o) for o in operands)
            if self.batched:
                body.append(f"v{nid} = _where({a} {sym} {b}, _ONE, _ZERO)")
            else:
                body.append(f"v{nid} = _ONE if {a} {sym} {b} else _ZERO")
        elif op is Op.SELECT:
            c, a, b = (self._operand(o) for o in operands)
            if self.batched:
                body.append(f"v{nid} = _where({c} != 0.0, {a}, {b})")
            else:
                body.append(f"v{nid} = {a} if {c} != 0.0 else {b}")
        else:
            raise ExecutionError(f"op {op} cannot be compiled")
        self._computed.add(nid)

    def emit(self, traced: bool) -> str:
        self._loads.clear()
        self._computed.clear()
        body: list[str] = []
        for tick, op, nid, operands, io_id in self.entries:
            self._emit_entry(body, tick, op, nid, operands, io_id)
        stores: list[str] = []
        if traced:
            for _tick, op, nid, _operands, _io in self.entries:
                if op is Op.ACTUATOR_WRITE:
                    stores.append(f"R[{nid}] = _ZERO")
                else:
                    stores.append(f"R[{nid}] = v{nid}")
        # PHI latch: sequential, in graph order, reading *live* register
        # slots — a PHI whose back edge is another PHI must observe the
        # value that PHI holds at this point in the latch sequence,
        # exactly as the interpreter does.
        latches: list[str] = []
        for phi in self.graph.phis():
            src = phi.back_edge
            value = f"v{src}" if src in self._computed else f"R[{src}]"
            latches.append(f"R[{phi.node_id}] = {value}")
        lines = ["def step(R, read, read_addr, write):"]
        for load in self._loads.values():
            lines.append(f"    {load}")
        for section in (body, stores, latches):
            for line in section:
                lines.append(f"    {line}")
        if len(lines) == 1:
            lines.append("    pass")
        return "\n".join(lines) + "\n"


class CompiledProgram:
    """One schedule lowered to flat compiled step functions.

    The program is stateless: the register file is a plain list (scalar
    engine) or a list of ``[B]`` arrays (batched engine), owned by the
    executor and passed into every step call.  Slot index == node id
    (node ids are dense).
    """

    def __init__(self, schedule: Schedule, precision: str = "single") -> None:
        if precision not in ("single", "double"):
            raise ExecutionError(f"precision must be 'single' or 'double', got {precision!r}")
        self.schedule = schedule
        self.graph: DataflowGraph = schedule.graph
        self.precision = precision
        self.ftype = np.float32 if precision == "single" else np.float64
        self.entries = merged_entries(schedule)
        self.n_slots = max(self.graph.nodes, default=-1) + 1
        #: Static per-iteration tick of each actuator write (io_id → tick).
        self.actuator_write_ticks: dict[int, int] = {
            io_id: tick for tick, op, _nid, _ops, io_id in self.entries
            if op is Op.ACTUATOR_WRITE
        }
        #: Static op-class census of one iteration (op name → count);
        #: the profiler attributes measured run time across op classes
        #: proportionally to these counts (deterministic, schedule-fixed).
        self.op_class_counts: dict[str, int] = {}
        for _tick, op, _nid, _ops, _io in self.entries:
            self.op_class_counts[op.name] = self.op_class_counts.get(op.name, 0) + 1
        emitter = _CodeEmitter(self.graph, self.entries, batched=False)
        self.source_fast = emitter.emit(traced=False)
        self.source_traced = emitter.emit(traced=True)
        self.step_fast = self._compile(self.source_fast, "fast", batched=False)
        self.step_traced = self._compile(self.source_traced, "traced", batched=False)
        self._step_batched = None
        self._step_batched_fast = None
        self.source_batched: str | None = None
        self.source_batched_fast: str | None = None
        self._certificate = None
        if _OBS.enabled:
            _PROGRAMS_COMPILED.inc(precision=precision)

    def _compile(self, source: str, variant: str, batched: bool):
        ns = {
            "_ft": self.ftype,
            "_sqrt": np.sqrt,
            "_ZERO": self.ftype(0.0),
            "_ONE": self.ftype(1.0),
            "_EE": ExecutionError,
            "_any": np.any,
            "_where": np.where,
            "_minimum": np.minimum,
            "_maximum": np.maximum,
        }
        code = compile(source, f"<cgra-engine:{self.graph.name}:{variant}>", "exec")
        exec(code, ns)
        return ns["step"]

    @property
    def step_batched(self):
        """The ``[B]``-array step function (compiled on first use)."""
        if self._step_batched is None:
            emitter = _CodeEmitter(self.graph, self.entries, batched=True)
            self.source_batched = emitter.emit(traced=True)
            self._step_batched = self._compile(self.source_batched, "batched", batched=True)
        return self._step_batched

    @property
    def step_batched_fast(self):
        """The ``[B]``-array step storing only PHI latches (compiled on
        first use).  Same fast/traced split as the scalar engine: loads
        only ever come from CONST/PARAM/PHI slots, so running
        ``(n−1)·fast + 1·traced`` leaves the register file identical to
        tracing every step."""
        if self._step_batched_fast is None:
            emitter = _CodeEmitter(self.graph, self.entries, batched=True)
            self.source_batched_fast = emitter.emit(traced=False)
            self._step_batched_fast = self._compile(
                self.source_batched_fast, "batched-fast", batched=True
            )
        return self._step_batched_fast

    @property
    def certificate(self):
        """Vectorization certificate of this program (derived on first use).

        The :class:`~repro.cgra.verify.dependence.VectorizationCertificate`
        partitioning the flat program into chunkable/sequential segments —
        the seam the future array-lowered engine consumes.  Purely static;
        cached per program.
        """
        if self._certificate is None:
            from repro.cgra.verify.dependence import certify_vectorization

            self._certificate = certify_vectorization(self.schedule).certificate
        return self._certificate

    def initial_slots(self, params: dict[str, float]) -> list:
        """Fresh register file with constants/params/PHI inits loaded."""
        ft = self.ftype
        slots: list = [None] * self.n_slots
        for node in self.graph.nodes.values():
            if node.op is Op.CONST:
                slots[node.node_id] = ft(node.value)
            elif node.op is Op.PARAM:
                slots[node.node_id] = ft(params[node.name])
            elif node.op is Op.PHI:
                if node.init_param is not None:
                    slots[node.node_id] = ft(params[node.init_param])
                else:
                    slots[node.node_id] = ft(node.init_value)
        return slots


#: id(schedule) → (weakref, {precision: CompiledProgram}).  Keyed by
#: identity so repeated executors over a (cached) CompiledModel skip
#: codegen entirely; the weakref guards against id reuse and cleans up
#: when the schedule is collected.
#:
#: **Multiprocess safety**: per-process only, like the model cache in
#: :mod:`repro.cgra.models` — and doubly so, because the key is an
#: ``id()``: an object's identity is meaningless in another process, so
#: a pickled schedule would never hit this cache anyway.  Worker pools
#: prime it per worker (via the initializer's model compile + first
#: run); never send CompiledProgram/Schedule handles between processes.
_PROGRAM_CACHE: dict[int, tuple] = {}


def compile_program(schedule: Schedule, precision: str = "single") -> CompiledProgram:
    """Lower ``schedule`` for ``precision``, memoised per schedule object."""
    key = id(schedule)
    cached = _PROGRAM_CACHE.get(key)
    if cached is None or cached[0]() is not schedule:
        # Capture the dict by value: at interpreter shutdown module
        # globals are already None when late finalizers fire.
        ref = weakref.ref(
            schedule, lambda _r, k=key, cache=_PROGRAM_CACHE: cache.pop(k, None)
        )
        cached = (ref, {})
        _PROGRAM_CACHE[key] = cached
    programs = cached[1]
    program = programs.get(precision)
    if program is None:
        program = CompiledProgram(schedule, precision)
        programs[precision] = program
    return program


def clear_program_cache() -> None:
    """Drop all memoised compiled programs."""
    _PROGRAM_CACHE.clear()


class BatchedCgraExecutor:
    """Advances B independent scenarios in lockstep with one program.

    The register file holds one ``[B]`` float array (or a scalar, for
    values that are still lane-uniform) per node; every arithmetic op is
    an elementwise NumPy operation, bit-identical per lane to the scalar
    compiled engine.  IO goes through a
    :class:`~repro.cgra.sensor.BatchSensorBus`, whose handlers produce
    and consume ``[B]`` arrays.

    Parameters are scalars (lane-uniform) or length-B arrays; the same
    holds for :meth:`set_register`/:meth:`set_param`.  A numeric fault in
    *any* lane faults the whole batch (lockstep semantics).
    """

    def __init__(
        self,
        schedule: Schedule,
        bus,
        params: dict | None = None,
        precision: str = "single",
        verify: bool = False,
        engine: str | None = None,
    ) -> None:
        if verify:
            from repro.cgra.verify import Severity, verify_schedule
            from repro.errors import VerificationError

            report = verify_schedule(schedule)
            if not report.ok:
                raise VerificationError(
                    "schedule failed static verification:\n"
                    + report.format(min_severity=Severity.WARNING)
                )
        self.schedule = schedule
        self.graph = schedule.graph
        self.bus = bus
        self.batch = int(bus.batch)
        self.precision = precision
        # The batched executor is inherently compiled; the engine seam
        # only selects whether time is chunked on top ("vector"), planned
        # per run ("auto") or stepped per cycle (anything else, including
        # the session default "interpreted", which has no batched
        # counterpart).
        resolved = resolve_engine(engine)
        self.engine = resolved if resolved in ("vector", "auto") else "compiled"
        #: Most recent autotune decision ("auto" engine only).
        self.last_plan = None
        self._plan = None
        self._program = compile_program(schedule, precision)
        self._ftype = self._program.ftype
        params = dict(params or {})
        missing = [p for p in self.graph.params if p not in params]
        if missing:
            raise ExecutionError(f"missing parameter values: {missing}")
        extra = [p for p in params if p not in self.graph.params]
        if extra:
            raise ExecutionError(f"unknown parameters: {extra}")
        self._params = {k: self._lanes(v) for k, v in params.items()}
        self._slots: list = [None] * self._program.n_slots
        for node in self.graph.nodes.values():
            if node.op is Op.CONST:
                self._slots[node.node_id] = self._ftype(node.value)
            elif node.op is Op.PARAM:
                self._slots[node.node_id] = self._params[node.name]
            elif node.op is Op.PHI:
                if node.init_param is not None:
                    self._slots[node.node_id] = self._params[node.init_param]
                else:
                    self._slots[node.node_id] = self._ftype(node.init_value)
        self._param_nodes: dict[str, list[int]] = {}
        self._phi_named: dict[str, int] = {}
        self._named_order: dict[str, list[int]] = {}
        for node in self.graph.nodes.values():
            if node.op is Op.PARAM:
                self._param_nodes.setdefault(node.name, []).append(node.node_id)
            if node.op is Op.PHI and node.name:
                self._phi_named.setdefault(node.name, node.node_id)
            if node.name:
                self._named_order.setdefault(node.name, []).append(node.node_id)
        self.iterations = 0
        self.actuator_write_ticks: dict[int, int] = {}

    def _lanes(self, value):
        """Scalar → lane-uniform np scalar; array → [B] array, rounded."""
        arr = np.asarray(value, dtype=float)
        if arr.ndim == 0:
            return self._ftype(float(arr))
        if arr.shape != (self.batch,):
            raise ExecutionError(
                f"per-lane value must be a scalar or shape ({self.batch},), "
                f"got shape {arr.shape}"
            )
        return arr.astype(self._ftype)

    @property
    def schedule_length(self) -> int:
        """Ticks per iteration (same schedule for every lane)."""
        return self.schedule.length

    def set_param(self, name: str, value) -> None:
        """Update a live-in parameter between iterations (per-lane ok)."""
        if name not in self.graph.params:
            raise ExecutionError(f"unknown parameter {name!r}")
        lanes = self._lanes(value)
        self._params[name] = lanes
        for nid in self._param_nodes.get(name, ()):
            self._slots[nid] = lanes

    def set_register(self, name: str, value) -> None:
        """Set a loop-carried register by name (scalar or per-lane)."""
        nid = self._phi_named.get(name)
        if nid is None:
            raise ExecutionError(f"no loop-carried register named {name!r}")
        self._slots[nid] = self._lanes(value)

    def register_of(self, name: str) -> np.ndarray:
        """Current per-lane values of a named node, shape ``[B]`` float64."""
        nid = self._phi_named.get(name)
        if nid is None:
            for candidate in self._named_order.get(name, ()):
                if self._slots[candidate] is not None:
                    nid = candidate
                    break
        if nid is None or self._slots[nid] is None:
            raise ExecutionError(f"no node named {name!r} with a value")
        value = np.asarray(self._slots[nid], dtype=float)
        return np.broadcast_to(value, (self.batch,)).copy()

    def lane_registers(self, lane: int) -> dict[int, float]:
        """Register-file snapshot of one lane (comparable to the scalar
        executor's ``registers`` dict)."""
        if not 0 <= lane < self.batch:
            raise ExecutionError(f"lane must be in [0, {self.batch}), got {lane}")
        out: dict[int, float] = {}
        for nid, value in enumerate(self._slots):
            if value is None:
                continue
            arr = np.asarray(value, dtype=float)
            out[nid] = float(arr) if arr.ndim == 0 else float(arr[lane])
        return out

    def run_iteration(self) -> None:
        """Advance every lane by one iteration."""
        self.run(1)

    def run(self, n_iterations: int) -> None:
        """Advance every lane by ``n_iterations`` in lockstep."""
        if n_iterations < 0:
            raise ExecutionError("n_iterations must be non-negative")
        if n_iterations == 0:
            return
        if self.engine == "vector":
            self._run_vector(n_iterations)
            return
        if self.engine == "auto" and n_iterations >= 8:
            from repro.cgra.autotune import plan_for

            plan = plan_for(self._program, self.batch, n_iterations)
            self.last_plan = plan
            if plan.engine == "vector":
                self._plan = plan
                self._run_vector(n_iterations)
                return
        self._run_batched(n_iterations)

    def _run_vector(self, n_iterations: int) -> None:
        """Chunked ``[B, T]`` run; falls back to per-cycle batched steps
        for uncertified programs, small runs and chunk tails."""
        from repro.cgra.engine_vector import MIN_CHUNK, get_vector_program

        vp = get_vector_program(self._program)
        if vp.ok and not vp._oracle_done:
            # The oracle's reference run is scalar: lane-0 parameters.
            vp.ensure_oracle(
                {k: float(np.asarray(v).reshape(-1)[0]) for k, v in self._params.items()}
            )
        if not vp.ok or n_iterations < MIN_CHUNK:
            self._run_batched(n_iterations)
            return
        if self._plan is not None:
            hint = self._plan.chunk_elems
        else:
            from repro.cgra.autotune import chunk_elems_hint

            hint = chunk_elems_hint()
        max_t = vp.max_chunk(self.batch, hint)
        done = 0
        chunks = 0
        import time as _time

        t0 = _time.perf_counter()
        try:
            while n_iterations - done >= MIN_CHUNK:
                T = min(max_t, n_iterations - done)
                progress = [0]
                try:
                    vp.run_chunk(
                        self._slots, self.bus, T, self.iterations + done,
                        progress, batched=True, batch=self.batch,
                    )
                finally:
                    done += progress[0]
                chunks += 1
        finally:
            self.iterations += done
            if done:
                self.actuator_write_ticks = dict(self._program.actuator_write_ticks)
            if _OBS.enabled and done:
                elapsed = _time.perf_counter() - t0
                _ENGINE_ITERATIONS.inc(done * self.batch, engine="vector")
                if elapsed > 0.0:
                    _ITERS_PER_SECOND.set(done * self.batch / elapsed, engine="vector")
                if _OBS.profile:
                    record_program(
                        self.graph.name, "vector", done, elapsed,
                        self._program.op_class_counts, lanes=self.batch,
                        segments=vp.segment_units(done, chunks),
                    )
        remainder = n_iterations - done
        if remainder:
            self._run_batched(remainder)

    def _run_batched(self, n_iterations: int) -> None:
        # Same fast/traced split as the scalar engine: all but the last
        # step store only PHI latches, the final traced step leaves the
        # full register file observable.
        step_fast = self._program.step_batched_fast
        step_traced = self._program.step_batched
        R = self._slots
        read, read_addr, write = self.bus.read, self.bus.read_addr, self.bus.write
        done = 0
        obs = _OBS.enabled
        if obs:
            import time as _time

            t0 = _time.perf_counter()
        try:
            with np.errstate(over="raise", invalid="raise", divide="raise"):
                for _ in range(n_iterations - 1):
                    step_fast(R, read, read_addr, write)
                    done += 1
                step_traced(R, read, read_addr, write)
                done += 1
        except FloatingPointError as exc:
            raise ExecutionError(
                f"non-finite value produced in iteration {self.iterations + done} "
                f"of the batched kernel: {exc}"
            ) from exc
        finally:
            self.iterations += done
            if done:
                self.actuator_write_ticks = dict(self._program.actuator_write_ticks)
            if obs and done:
                elapsed = _time.perf_counter() - t0
                _ENGINE_ITERATIONS.inc(done * self.batch, engine="batched")
                if elapsed > 0.0:
                    _ITERS_PER_SECOND.set(done * self.batch / elapsed, engine="batched")
                if _OBS.profile:
                    record_program(
                        self.graph.name, "batched", done, elapsed,
                        self._program.op_class_counts, lanes=self.batch,
                    )

    def run_driven(self, n_iterations: int, pre=None, post=None) -> None:
        """Advance ``n_iterations`` with host callbacks around each step,
        under one errstate/telemetry envelope.

        The closed-loop HIL driver: per iteration ``i`` (0-based) this
        runs ``pre(i)``, one batched step, then ``post(i)`` — exactly the
        call sequence of a Python loop over :meth:`run_iteration`, minus
        its per-iteration ``np.errstate`` enter/exit and telemetry.  All
        but the last step use the fast (PHI-only) variant, so callbacks
        may observe loop-carried registers and actuator-write effects —
        everything the closed loop reads back; after the call returns the
        register file is fully traced, as after :meth:`run`.  Callbacks
        execute under ``np.errstate(raise)``.
        """
        if n_iterations < 0:
            raise ExecutionError("n_iterations must be non-negative")
        if n_iterations == 0:
            return
        step_fast = self._program.step_batched_fast
        step_traced = self._program.step_batched
        R = self._slots
        read, read_addr, write = self.bus.read, self.bus.read_addr, self.bus.write
        done = 0
        obs = _OBS.enabled
        if obs:
            import time as _time

            t0 = _time.perf_counter()
        try:
            with np.errstate(over="raise", invalid="raise", divide="raise"):
                last = n_iterations - 1
                for i in range(n_iterations):
                    if pre is not None:
                        pre(i)
                    if i < last:
                        step_fast(R, read, read_addr, write)
                    else:
                        step_traced(R, read, read_addr, write)
                    done += 1
                    if post is not None:
                        post(i)
        except FloatingPointError as exc:
            raise ExecutionError(
                f"non-finite value produced in iteration {self.iterations + done} "
                f"of the batched kernel: {exc}"
            ) from exc
        finally:
            self.iterations += done
            if done:
                self.actuator_write_ticks = dict(self._program.actuator_write_ticks)
            if obs and done:
                elapsed = _time.perf_counter() - t0
                _ENGINE_ITERATIONS.inc(done * self.batch, engine="batched")
                if elapsed > 0.0:
                    _ITERS_PER_SECOND.set(done * self.batch / elapsed, engine="batched")
                if _OBS.profile:
                    record_program(
                        self.graph.name, "batched", done, elapsed,
                        self._program.op_class_counts, lanes=self.batch,
                    )

    def register_view(self, name: str):
        """Live value of a named loop-carried register — the current
        slot, no copy, no broadcast (may be a lane-uniform scalar).
        Read-only by contract; re-fetch after every step (slots rebind).
        """
        nid = self._phi_named.get(name)
        if nid is None:
            raise ExecutionError(f"no loop-carried register named {name!r}")
        return self._slots[nid]
