"""Coarse-Grained Reconfigurable Architecture (CGRA) substrate.

Reproduces the paper's Section III-C tool flow end to end:

1. the beam model is written in (a subset of) C;
2. a code parser converts it into a control/data-flow graph — the paper's
   "Scheduler Application Representation (SCAR)" (:mod:`repro.cgra.frontend`,
   :mod:`repro.cgra.dfg`);
3. a customised resource-constrained list scheduler maps the graph onto a
   processing-element fabric with a configurable interconnect
   (:mod:`repro.cgra.scheduler`, :mod:`repro.cgra.fabric`);
4. the scheduler's output is a set of context-memory images that can be
   loaded without re-synthesis (:mod:`repro.cgra.context`);
5. the contexts execute cycle-accurately against the SensorAccess bus
   (:mod:`repro.cgra.executor`, :mod:`repro.cgra.sensor`);
6. every stage can be checked statically — schedule/context legality,
   mini-C semantics, value ranges — without executing anything
   (:mod:`repro.cgra.verify`, ``python -m repro.cgra.lint``).

The schedule length in clock ticks, divided into the CGRA clock rate,
gives the maximum revolution frequency the simulator can sustain — the
paper's central real-time argument (reproduced by :mod:`repro.cgra.timing`).
"""

from repro.cgra.ops import Op, OperatorLatencies
from repro.cgra.dfg import DFGNode, DataflowGraph
from repro.cgra.fabric import CgraFabric, CgraConfig
from repro.cgra.sensor import BatchSensorBus, SensorBus
from repro.cgra.frontend import compile_c_to_dfg
from repro.cgra.scheduler import ListScheduler, Schedule, ScheduledOp
from repro.cgra.modulo import ModuloScheduler, ModuloSchedule
from repro.cgra.autotune import (
    ExecutionPlan,
    MachineProfile,
    calibrate,
    plan_for,
)
from repro.cgra.engine import (
    BatchedCgraExecutor,
    CompiledProgram,
    compile_program,
    get_default_engine,
    set_default_engine,
)
from repro.cgra.pipelined_executor import PipelinedExecutor
from repro.cgra.reference import ReferenceInterpreter
from repro.cgra.context import ContextImage, build_context_images
from repro.cgra.executor import CgraExecutor
from repro.cgra.timing import ClockDomain, max_revolution_frequency
from repro.cgra.models import (
    beam_model_source,
    clear_cache,
    compile_beam_model,
    compile_monitor_model,
    monitor_model_source,
    CompiledModel,
)
from repro.cgra.verify import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    analyze_ranges,
    lint_source,
    verify_context_images,
    verify_modulo_schedule,
    verify_schedule,
)

__all__ = [
    "Op",
    "OperatorLatencies",
    "DFGNode",
    "DataflowGraph",
    "CgraFabric",
    "CgraConfig",
    "SensorBus",
    "BatchSensorBus",
    "compile_c_to_dfg",
    "ListScheduler",
    "Schedule",
    "ScheduledOp",
    "ModuloScheduler",
    "ModuloSchedule",
    "BatchedCgraExecutor",
    "CompiledProgram",
    "ExecutionPlan",
    "MachineProfile",
    "calibrate",
    "plan_for",
    "compile_program",
    "get_default_engine",
    "set_default_engine",
    "PipelinedExecutor",
    "ReferenceInterpreter",
    "ContextImage",
    "build_context_images",
    "CgraExecutor",
    "ClockDomain",
    "max_revolution_frequency",
    "beam_model_source",
    "clear_cache",
    "compile_beam_model",
    "compile_monitor_model",
    "monitor_model_source",
    "CompiledModel",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "analyze_ranges",
    "lint_source",
    "verify_context_images",
    "verify_modulo_schedule",
    "verify_schedule",
]
