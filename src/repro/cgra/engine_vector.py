"""Vector (time-chunk) execution tier driven by vectorization certificates.

The compiled tier (:mod:`repro.cgra.engine`) still executes generated
*scalar* Python per cycle.  This module lowers a
:class:`~repro.cgra.engine.CompiledProgram` one level further, consuming
the :class:`~repro.cgra.verify.dependence.VectorizationCertificate`
partition the dependence pass proved:

* **chunkable segments** become fused NumPy expressions over
  ``[T]``-shaped time-chunk arrays (``[B, T]`` under the batched
  executor — the time axis is always last, so the same generated source
  serves both);
* **sequential segments** stay per-iteration loops, generated with the
  same per-op semantics as the compiled scalar step so every value is
  bit-identical;
* loop-carried (PHI) reads are satisfied by the certificate's distance-1
  shift trick: the observed vector is ``[incoming, src[..., :-1]]``.

The whole chunk body is one generated function, so cross-segment values
flow as plain locals.  Ordering guarantees match the interpreter under
the certificate's **pure-handler contract** (handlers are pure functions
of the iteration index / address — the same contract
:mod:`repro.cgra.verify.chunk_oracle` validates):

* address-less sensor reads of chunkable segments are gathered in one
  per-iteration prologue loop that calls every site in tick order, so a
  *stateful* handler still sees the interpreter's exact call stream;
* actuator writes are buffered and committed in global
  ``(iteration, tick, node)`` order after the chunk succeeds, so write
  handlers (stateful or not) see the interpreter's exact stream;
* address reads are gathered site-by-site (per-port per-site streams are
  preserved; cross-site interleaving within one port is only observable
  to impure address handlers, which the contract excludes).

**Fault parity** is by *abort and replay*: the chunk attempt runs under
``numpy.errstate(raise)`` with **no** guards in the generated code — any
numeric fault (division by zero, sqrt of a negative, overflow) aborts
the chunk, the register file is restored from the entry snapshot, and
the per-cycle compiled step replays the chunk against the recorded read
logs (falling through to the live bus when a log is exhausted).  The
replay reproduces the compiled tier's exact fault message, iteration
count and partial side effects — which the PR-3 suites already pin
bit-identical to the interpreter.

Programs the lowering cannot prove safe — unresolved or distance>1
carried registers, ports that are both read and written (closed-loop
feedback through the bus), no chunkable segment at all — fall back
wholesale to the compiled tier, which is trivially still bit-exact.
The first chunked run of each program additionally replays the
PR-6 :func:`~repro.cgra.verify.chunk_oracle.run_chunk_oracle`
differential gate under synthetic pure handlers.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cgra.engine import CompiledProgram
from repro.cgra.ops import Op
from repro.errors import ExecutionError
from repro.obs import get_registry
from repro.obs._state import STATE as _OBS

__all__ = ["VectorProgram", "get_vector_program", "clear_kernel_cache"]

#: Chunks below this length run on the per-cycle compiled path (the
#: generated finalize needs T >= 2, and tiny chunks cost more in array
#: setup than they save).  ``CgraExecutor.run_iteration`` therefore
#: always takes the compiled step — the HIL per-revolution loop keeps
#: its exact closed-loop bus semantics under ``engine="vector"``.
MIN_CHUNK = 8
#: Default upper bound on scalar chunk length; a calibrated chunk hint
#: (:func:`repro.cgra.autotune.chunk_elems_hint`) may raise T up to
#: :data:`MAX_CHUNK_HARD` (memory: every live op holds one ``[T]``
#: float32 vector while the chunk body runs).
MAX_CHUNK = 2048
#: Absolute chunk-length ceiling, hint or not.
MAX_CHUNK_HARD = 8192
#: Default element budget for batched chunks: T is scaled down so B*T
#: stays bounded (a [B, T] vector per live op).
CHUNK_ELEMS = 32768

_KERNEL_CACHE_HITS = get_registry().counter(
    "cgra_vector_kernel_cache_hits_total",
    "fused vector chunk kernels served from the source-keyed code cache",
)
_KERNEL_CACHE_MISSES = get_registry().counter(
    "cgra_vector_kernel_cache_misses_total",
    "fused vector chunk kernels compiled from generated source",
)

#: Generated chunk source → compiled code object.  The source text is a
#: pure function of (certificate, entries, batched flag), so equal
#: programs — including re-lowered ones after a cache clear or in a
#: fresh worker that re-ran codegen — share one ``compile()`` per
#: kernel; precision only affects the exec namespace, never the code.
_KERNEL_CODE_CACHE: dict[str, object] = {}


def clear_kernel_cache() -> None:
    """Drop all cached fused chunk-kernel code objects."""
    _KERNEL_CODE_CACHE.clear()

_READ_OPS = (Op.SENSOR_READ, Op.SENSOR_READ_ADDR)


def _carry_vec(incoming, src):
    """Distance-1 carried read over a chunk: ``[incoming, src[:-1]]``."""
    inc = np.asarray(incoming)
    lead = np.broadcast_shapes(inc.shape, src.shape[:-1])
    out = np.empty(lead + (src.shape[-1],), src.dtype)
    out[..., 0] = inc
    out[..., 1:] = src[..., :-1]
    return out


def _carry_const(incoming, value, n):
    """Carried read whose source is loop-invariant: ``[incoming, v, v, …]``."""
    inc = np.asarray(incoming)
    val = np.asarray(value)
    lead = np.broadcast_shapes(inc.shape, val.shape)
    out = np.empty(lead + (n,), val.dtype)
    out[..., 0] = inc
    out[..., 1:] = val[..., None]
    return out


def _col(value):
    """Lift a per-lane ``[B]`` value to ``[B, 1]`` so it broadcasts
    against ``[B, T]`` chunk vectors; scalars pass through."""
    arr = np.asarray(value)
    return arr[..., None] if arr.ndim else value


class _VectorEmitter:
    """Generates the single chunk function for one certified program."""

    def __init__(self, program: CompiledProgram, carried: dict, batched: bool) -> None:
        self.graph = program.graph
        self.batched = batched
        self.carried = carried
        self.entries: dict[int, tuple] = {
            nid: (tick, op, operands, io_id)
            for tick, op, nid, operands, io_id in program.entries
        }
        self.segments = list(program.certificate.segments)
        self.seg_of: dict[int, int] = {}
        for pos, seg in enumerate(self.segments):
            for nid in seg.node_ids:
                self.seg_of[nid] = pos

        # -- classification: time-varying vs loop-invariant values ------
        self.tv: set[int] = set()
        self.static: set[int] = set()
        self.writes: set[int] = set()
        for seg in self.segments:
            for nid in seg.node_ids:
                _tick, op, operands, _io = self.entries[nid]
                if op is Op.ACTUATOR_WRITE:
                    self.writes.add(nid)
                    continue
                if op in _READ_OPS:
                    self.tv.add(nid)
                    continue
                if any(o in self.tv or self._is_phi(o) for o in operands):
                    self.tv.add(nid)
                else:
                    self.static.add(nid)

        # -- which sequential-segment values must persist as vectors ----
        self.needs_vector: set[int] = set()
        for pos, seg in enumerate(self.segments):
            for nid in seg.node_ids:
                _tick, _op, operands, _io = self.entries[nid]
                for o in operands:
                    if o in self.entries:
                        self._mark_cross(o, pos)
                    elif self._is_phi(o):
                        reg = self.carried[o]
                        if reg.source_kind == "computed":
                            src_pos = self.seg_of[reg.source]
                            if src_pos != pos:
                                self._mark_cross(reg.source, pos)

        #: PHIs whose computed source lives in a sequential segment:
        #: tracked with the in-loop s/q latch pattern (seg pos → phis).
        self.seq_latch: dict[int, list[int]] = {}
        for phi_id, reg in self.carried.items():
            if reg.source_kind != "computed":
                continue
            pos = self.seg_of[reg.source]
            if self.segments[pos].kind == "sequential":
                self.seq_latch.setdefault(pos, []).append(phi_id)

        self._p_built: set[int] = set()
        self._lines: list[str] = []

    # -- helpers --------------------------------------------------------

    def _is_phi(self, node_id: int) -> bool:
        return self.graph.node(node_id).op is Op.PHI

    def _mark_cross(self, src: int, use_pos: int) -> None:
        """A value computed in one segment is consumed in a later one."""
        src_pos = self.seg_of[src]
        if (
            src_pos != use_pos
            and src in self.tv
            and self.segments[src_pos].kind == "sequential"
        ):
            self.needs_vector.add(src)

    def _add(self, line: str, depth: int = 1) -> None:
        self._lines.append("    " * depth + line)

    def _has_vector(self, nid: int) -> bool:
        """Whether ``v{nid}`` is a full ``[.., T]`` vector local."""
        if nid not in self.tv:
            return False
        return (
            self.segments[self.seg_of[nid]].kind == "chunkable"
            or nid in self.needs_vector
        )

    def _ensure_p(self, phi_id: int, depth: int = 1) -> str:
        """Emit (once) the observed-value vector of a carried register."""
        name = f"p{phi_id}"
        if phi_id in self._p_built:
            return name
        self._p_built.add(phi_id)
        reg = self.carried[phi_id]
        if reg.source_kind in ("const", "param"):
            self._add(f"{name} = _carry_const(R[{phi_id}], R[{reg.source}], T)", depth)
        elif reg.source in self.static:
            self._add(f"{name} = _carry_const(R[{phi_id}], v{reg.source}, T)", depth)
        else:
            self._add(f"{name} = _carry_vec(R[{phi_id}], v{reg.source})", depth)
        return name

    # -- operand references ---------------------------------------------

    def _ref_chunk(self, o: int, depth: int = 1, io: bool = False) -> str:
        """Operand reference inside a chunkable segment (vector rank).

        ``io=True`` keeps loop-invariant operands at per-lane rank (bus
        handlers and write buffers take ``[B]``/scalar values, not the
        broadcast-ready ``[B, 1]`` shape arithmetic wants)."""
        wrap = (lambda r: r) if (io or not self.batched) else (lambda r: f"_col({r})")
        if o in self.entries:
            if o in self.tv:
                return f"v{o}"
            return wrap(f"v{o}")
        if self._is_phi(o):
            return self._ensure_p(o, depth)
        return wrap(f"R[{o}]")

    def _ref_seq(self, o: int, pos: int) -> str:
        """Operand reference inside a sequential segment's loop body
        (per-iteration rank)."""
        if o in self.entries:
            if self.seg_of[o] == pos or o in self.static:
                return f"v{o}"
            return f"v{o}[..., _t]"
        if self._is_phi(o):
            reg = self.carried[o]
            if (
                reg.source_kind == "computed"
                and self.seg_of[reg.source] == pos
            ):
                return f"s{o}"
            return f"{self._ensure_p(o)}[..., _t]"
        return f"R[{o}]"

    # -- per-op expressions ----------------------------------------------

    def _arith(self, op: Op, nid: int, refs: list[str], array_form: bool) -> str:
        """One arithmetic op; no fault guards — the chunk runs under
        ``errstate(raise)`` and faults are replayed per-cycle."""
        if op in (Op.FADD, Op.FSUB, Op.FMUL):
            sym = {Op.FADD: "+", Op.FSUB: "-", Op.FMUL: "*"}[op]
            return f"{refs[0]} {sym} {refs[1]}"
        if op is Op.FDIV:
            return f"{refs[0]} / {refs[1]}"
        if op is Op.FSQRT:
            return f"_sqrt({refs[0]})"
        if op is Op.FNEG:
            return f"-{refs[0]}"
        if op is Op.FMIN:
            if array_form:
                return f"_minimum({refs[0]}, {refs[1]})"
            return f"{refs[1]} if {refs[1]} < {refs[0]} else {refs[0]}"
        if op is Op.FMAX:
            if array_form:
                return f"_maximum({refs[0]}, {refs[1]})"
            return f"{refs[1]} if {refs[0]} < {refs[1]} else {refs[0]}"
        if op in (Op.CMP_LT, Op.CMP_LE):
            sym = "<" if op is Op.CMP_LT else "<="
            if array_form:
                return f"_where({refs[0]} {sym} {refs[1]}, _ONE, _ZERO)"
            return f"_ONE if {refs[0]} {sym} {refs[1]} else _ZERO"
        if op is Op.SELECT:
            if array_form:
                return f"_where({refs[0]} != 0.0, {refs[1]}, {refs[2]})"
            return f"{refs[1]} if {refs[0]} != 0.0 else {refs[2]}"
        raise ExecutionError(f"op {op} cannot be vector-lowered")

    # -- emission ---------------------------------------------------------

    def emit(self) -> str:
        self._lines = ["def chunk(T, R, read, read_addr, wl, rl, LEAD):"]
        self._p_built.clear()
        self._emit_prologue()
        for pos, seg in enumerate(self.segments):
            self._add(f"# -- segment {pos}: {seg.kind} --")
            if seg.kind == "chunkable":
                self._emit_chunk_seg(seg)
            else:
                self._emit_seq_seg(pos, seg)
        self._emit_finalize()
        if len(self._lines) == 1:
            self._add("pass")
        return "\n".join(self._lines) + "\n"

    def _plain_read_sites(self) -> list[int]:
        return sorted(
            (
                nid
                for seg in self.segments
                if seg.kind == "chunkable"
                for nid in seg.node_ids
                if self.entries[nid][1] is Op.SENSOR_READ
            ),
            key=lambda n: (self.entries[n][0], n),
        )

    def _emit_prologue(self) -> None:
        """Gather every address-less read of the chunk in one loop that
        calls all sites in tick order per iteration — the interpreter's
        exact per-iteration call stream, stateful handlers included."""
        sites = self._plain_read_sites()
        if not sites:
            return
        for nid in sites:
            self._add(f"g{nid} = _empty(LEAD + (T,))")
        self._add("for _t in range(T):")
        for nid in sites:
            io = self.entries[nid][3]
            self._add(f"g{nid}[..., _t] = read({io})", 2)
        for nid in sites:
            tick, _op, _ops, io = self.entries[nid]
            self._add(f"rl.append((0, {io}, {tick}, {nid}, g{nid}))")

    def _emit_chunk_seg(self, seg) -> None:
        for nid in seg.node_ids:
            tick, op, operands, io = self.entries[nid]
            if op is Op.SENSOR_READ:
                self._add(f"v{nid} = g{nid}")
            elif op is Op.SENSOR_READ_ADDR:
                aref = self._ref_chunk(operands[0], io=True)
                varying = operands[0] in self.tv or self._is_phi(operands[0])
                self._add(f"v{nid} = _empty(LEAD + (T,))")
                if varying:
                    self._add(f"_a{nid} = {aref}")
                    self._add("for _t in range(T):")
                    self._add(f"v{nid}[..., _t] = read_addr({io}, _a{nid}[..., _t])", 2)
                else:
                    self._add("for _t in range(T):")
                    self._add(f"v{nid}[..., _t] = read_addr({io}, {aref})", 2)
                self._add(f"rl.append((1, {io}, {tick}, {nid}, v{nid}))")
            elif op is Op.ACTUATOR_WRITE:
                src = operands[0]
                ref = self._ref_chunk(src, io=True)
                varying = src in self.tv or self._is_phi(src)
                self._add(f"wl.append(({tick}, {nid}, {io}, {ref}, {int(varying)}))")
            elif nid in self.static:
                refs = [self._ref_chunk(o, io=True) for o in operands]
                self._add(f"v{nid} = {self._arith(op, nid, refs, self.batched)}")
            else:
                refs = [self._ref_chunk(o) for o in operands]
                self._add(f"v{nid} = {self._arith(op, nid, refs, True)}")

    def _emit_seq_seg(self, pos: int, seg) -> None:
        # Loop-invariant ops hoist above the loop (plain per-lane rank).
        for nid in seg.node_ids:
            if nid in self.static:
                _tick, op, operands, _io = self.entries[nid]
                refs = [self._ref_seq(o, pos) for o in operands]
                self._add(f"v{nid} = {self._arith(op, nid, refs, self.batched)}")
        # Pre-build observed vectors for cross-segment carried reads.
        for nid in seg.node_ids:
            _tick, op, operands, _io = self.entries[nid]
            for o in operands:
                if self._is_phi(o):
                    self._ref_seq(o, pos)  # may emit the p-vector build
        loop_nodes = [n for n in seg.node_ids if n not in self.static]
        for nid in loop_nodes:
            tick, op, operands, io = self.entries[nid]
            if nid in self.needs_vector:
                self._add(f"o{nid} = _empty(LEAD + (T,))")
            if op in _READ_OPS:
                kind = 0 if op is Op.SENSOR_READ else 1
                self._add(f"_r{nid} = []")
                self._add(f"rl.append(({kind}, {io}, {tick}, {nid}, _r{nid}))")
            elif op is Op.ACTUATOR_WRITE:
                self._add(f"_w{nid} = []")
                self._add(f"wl.append(({tick}, {nid}, {io}, _w{nid}, 2))")
        for phi_id in self.seq_latch.get(pos, ()):
            self._add(f"s{phi_id} = R[{phi_id}]")
            self._add(f"q{phi_id} = R[{phi_id}]")
        self._add("for _t in range(T):")
        for nid in loop_nodes:
            _tick, op, operands, io = self.entries[nid]
            if op is Op.SENSOR_READ:
                self._add(f"v{nid} = _ft(read({io}))", 2)
                self._add(f"_r{nid}.append(v{nid})", 2)
            elif op is Op.SENSOR_READ_ADDR:
                aref = self._ref_seq(operands[0], pos)
                self._add(f"v{nid} = _ft(read_addr({io}, {aref}))", 2)
                self._add(f"_r{nid}.append(v{nid})", 2)
            elif op is Op.ACTUATOR_WRITE:
                self._add(f"_w{nid}.append({self._ref_seq(operands[0], pos)})", 2)
                continue
            else:
                refs = [self._ref_seq(o, pos) for o in operands]
                self._add(f"v{nid} = {self._arith(op, nid, refs, self.batched)}", 2)
            if nid in self.needs_vector:
                self._add(f"o{nid}[..., _t] = v{nid}", 2)
        # In-loop latch shadow: s = source value of this iteration,
        # q = source value of the previous one (finalize needs T-2).
        for phi_id in self.seq_latch.get(pos, ()):
            self._add(f"q{phi_id} = s{phi_id}", 2)
        for phi_id in self.seq_latch.get(pos, ()):
            src = self.carried[phi_id].source
            self._add(f"s{phi_id} = {self._ref_seq(src, pos)}", 2)
        for nid in loop_nodes:
            if nid in self.needs_vector:
                self._add(f"v{nid} = o{nid}")

    def _emit_finalize(self) -> None:
        """Store the last iteration's values and latch carried registers —
        the exact post-state of a traced compiled step at iteration T-1."""
        self._add("# -- finalize: registers + carried latch --")
        for seg in self.segments:
            for nid in seg.node_ids:
                if nid in self.writes:
                    self._add(f"R[{nid}] = _ZERO")
                elif nid in self.static:
                    self._add(f"R[{nid}] = v{nid}")
                elif self._has_vector(nid):
                    self._add(f"R[{nid}] = v{nid}[..., T - 1]")
                else:
                    self._add(f"R[{nid}] = v{nid}")
        # Observed value of each carried register during iteration T-1
        # (its source value of iteration T-2, by the distance-1 gate).
        for phi_id in sorted(self.carried):
            reg = self.carried[phi_id]
            if reg.source_kind in ("const", "param"):
                self._add(f"R[{phi_id}] = R[{reg.source}]")
            elif reg.source in self.static:
                self._add(f"R[{phi_id}] = v{reg.source}")
            elif self._has_vector(reg.source):
                self._add(f"R[{phi_id}] = v{reg.source}[..., T - 2]")
            else:
                self._add(f"R[{phi_id}] = q{phi_id}")
        # Latch pass: sequential, in graph order, reading live slots —
        # byte-for-byte the compiled traced step's latch block.
        for phi in self.graph.phis():
            self._add(f"R[{phi.node_id}] = R[{phi.back_edge}]")


def _vector_safe(program: CompiledProgram, carried: dict) -> tuple[bool, str]:
    """Whether the chunk lowering's assumptions hold for this program."""
    cert = program.certificate
    if not cert.chunkable_segments():
        return False, "certificate has no chunkable segment"
    for phi_id, reg in carried.items():
        if not reg.resolved:
            return False, f"carried register {phi_id} is unresolved ({reg.reason})"
        if reg.distance != 1:
            return False, (
                f"carried register {phi_id} has distance {reg.distance} "
                "(chunk shift needs distance 1)"
            )
        if reg.source_kind == "computed":
            entry = next(
                (e for e in program.entries if e[2] == reg.source), None
            )
            if entry is None or entry[1] is Op.ACTUATOR_WRITE:
                return False, f"carried register {phi_id} has no value-producing source"
    # Stateful-handler call-stream parity for address-less reads: the
    # prologue preserves the interpreter's exact per-iteration call
    # order for sites in *chunkable* segments; a site in a sequential
    # segment runs in its own per-segment loop, so a port read there
    # must have no other site (single-site streams are order-trivial).
    chunkable_ids = set(cert.certified_node_ids())
    plain_sites: dict[int, list[int]] = {}
    for _t, op, nid, _o, io in program.entries:
        if op is Op.SENSOR_READ:
            plain_sites.setdefault(io, []).append(nid)
    for io, sites in plain_sites.items():
        if len(sites) > 1 and any(n not in chunkable_ids for n in sites):
            return False, (
                f"port {io} has {len(sites)} address-less read sites with at "
                "least one in a sequential segment — per-iteration call order "
                "cannot be preserved for stateful handlers"
            )
    read_ports = {
        io for _t, op, _n, _o, io in program.entries if op in _READ_OPS
    }
    write_ports = {
        io for _t, op, _n, _o, io in program.entries if op is Op.ACTUATOR_WRITE
    }
    feedback = sorted(read_ports & write_ports)
    if feedback:
        return False, (
            f"ports {feedback} are both read and written — buffered chunk "
            "writes would break closed-loop feedback through the bus"
        )
    return True, ""


class VectorProgram:
    """One compiled program lowered to a certificate-driven chunk kernel.

    Stateless like :class:`~repro.cgra.engine.CompiledProgram`: the
    register file is owned by the executor and passed into every chunk.
    When :attr:`ok` is false (``reason`` says why) the executor runs the
    per-cycle compiled path instead — same results, no chunk speedup.
    """

    def __init__(self, program: CompiledProgram) -> None:
        from repro.cgra.verify.effects import resolve_carried

        self.program = program
        self.carried = resolve_carried(program.graph)
        self.ok, self.reason = _vector_safe(program, self.carried)
        self.source: str | None = None
        self.source_batched: str | None = None
        self._fn = None
        self._fn_batched = None
        self._oracle_done = False
        #: Per-segment profile attribution units: (label, kind, width).
        self.segment_meta: list[tuple[str, str, int]] = []
        if self.ok:
            self.segment_meta = [
                (f"s{pos}.{seg.kind}", seg.kind, len(seg.node_ids))
                for pos, seg in enumerate(program.certificate.segments)
            ]
            emitter = _VectorEmitter(program, self.carried, batched=False)
            self.source = emitter.emit()
            self._fn = self._compile(self.source, "vector")

    def _compile(self, source: str, variant: str):
        ft = self.program.ftype
        ns = {
            "_ft": ft,
            "_sqrt": np.sqrt,
            "_ZERO": ft(0.0),
            "_ONE": ft(1.0),
            "_where": np.where,
            "_minimum": np.minimum,
            "_maximum": np.maximum,
            "_empty": lambda shape, _np=np, _d=ft: _np.empty(shape, _d),
            "_carry_vec": _carry_vec,
            "_carry_const": _carry_const,
            "_col": _col,
            "_EE": ExecutionError,
        }
        code = _KERNEL_CODE_CACHE.get(source)
        if code is None:
            if _OBS.enabled:
                _KERNEL_CACHE_MISSES.inc()
            code = compile(
                source, f"<cgra-engine:{self.program.graph.name}:{variant}>", "exec"
            )
            _KERNEL_CODE_CACHE[source] = code
        elif _OBS.enabled:
            _KERNEL_CACHE_HITS.inc()
        exec(code, ns)
        return ns["chunk"]

    def _chunk_fn(self, batched: bool):
        if not batched:
            return self._fn
        if self._fn_batched is None:
            emitter = _VectorEmitter(self.program, self.carried, batched=True)
            self.source_batched = emitter.emit()
            self._fn_batched = self._compile(self.source_batched, "vector-batched")
        return self._fn_batched

    def max_chunk(self, batch: int = 1, hint: int | None = None) -> int:
        """Chunk length bound for a given lane count (memory budget).

        ``hint`` is a calibrated element budget (``B * T``) from
        :mod:`repro.cgra.autotune`; without one the static defaults
        apply.  Chunk size never affects results — only how many
        iterations each fused kernel call advances."""
        if hint is not None:
            return min(MAX_CHUNK_HARD, max(MIN_CHUNK, int(hint) // max(1, batch)))
        return min(MAX_CHUNK, max(MIN_CHUNK, CHUNK_ELEMS // max(1, batch)))

    def segment_units(self, iterations: int, chunks: int) -> list[tuple[str, int]]:
        """Deterministic per-segment attribution weights for the profiler:
        a sequential segment costs ~width ops per *iteration*, a chunkable
        one ~width vector ops per *chunk*."""
        return [
            (label, width * (chunks if kind == "chunkable" else iterations))
            for label, kind, width in self.segment_meta
        ]

    # -- compile-time differential gate ---------------------------------

    def ensure_oracle(self, params: dict[str, float]) -> None:
        """Replay the PR-6 chunk oracle once per program (first chunked
        run).  A :class:`~repro.errors.VerificationError` — a certified
        segment that does *not* replay bit-exactly — propagates: that is
        a real certificate/lowering bug.  A numeric fault under the
        synthetic handlers only disables the chunk path (``ok=False``)."""
        if self._oracle_done or not self.ok:
            return
        self._oracle_done = True
        from repro.cgra.verify.chunk_oracle import run_chunk_oracle

        readers: dict[int, object] = {}
        addr_readers: dict[int, object] = {}
        for _tick, op, _nid, _ops, io in self.program.entries:
            if op is Op.SENSOR_READ:
                readers[io] = lambda t, io=io: (
                    math.sin(0.37 * t + 0.11 * io) * 0.75 + 1.0
                )
            elif op is Op.SENSOR_READ_ADDR:
                addr_readers[io] = lambda t, addr, io=io: (
                    math.sin(0.13 * t + 0.07 * addr + io) + 1.5
                )
        try:
            run_chunk_oracle(
                self.program.schedule,
                params=params,
                readers=readers,
                addr_readers=addr_readers,
                n_iterations=32,
                precision=self.program.precision,
            )
        except ExecutionError as exc:
            self.ok = False
            self.reason = f"chunk oracle hit a numeric fault: {exc}"

    # -- execution -------------------------------------------------------

    def run_chunk(
        self,
        R: list,
        bus,
        T: int,
        base_iterations: int,
        progress: list,
        batched: bool = False,
        batch: int = 1,
    ) -> None:
        """Execute one ``T``-iteration chunk against the register file.

        ``progress[0]`` is set to the number of completed iterations
        (``T`` on success) before any exception propagates — the caller
        folds it into its iteration count."""
        if T < 2:
            raise ExecutionError("chunk length must be >= 2")
        fn = self._chunk_fn(batched)
        lead = (batch,) if batched else ()
        wl: list = []
        rl: list = []
        snapshot = list(R)
        try:
            with np.errstate(over="raise", invalid="raise", divide="raise"):
                fn(T, R, bus.read, bus.read_addr, wl, rl, lead)
        except Exception:
            # Abort: restore the entry state and replay per-cycle against
            # the recorded read logs — exact compiled-tier fault text,
            # iteration count and partial writes.
            R[:] = snapshot
            self._replay(R, bus, T, base_iterations, rl, batched, progress)
            return
        progress[0] = T
        # Commit buffered actuator writes in global (t, tick, node)
        # order — the interpreter's exact write stream.  The per-t values
        # are materialised up front (time-varying vectors become
        # contiguous per-t rows via one moveaxis copy) so the commit loop
        # is a plain sequence walk instead of per-t fancy indexing.
        if wl:
            order = sorted(wl, key=lambda w: (w[0], w[1]))
            write = bus.write
            commits = []
            for _tick, _nid, io, val, kind in order:
                if kind == 1:
                    commits.append((io, np.ascontiguousarray(np.moveaxis(val, -1, 0))))
                elif kind == 2:
                    commits.append((io, val))
                else:
                    commits.append((io, (val,) * T))
            if len(commits) == 1:
                io, seq = commits[0]
                for v in seq:
                    write(io, v)
            else:
                for t in range(T):
                    for io, seq in commits:
                        write(io, seq[t])

    def _replay(
        self,
        R: list,
        bus,
        T: int,
        base_iterations: int,
        rl: list,
        batched: bool,
        progress: list,
    ) -> None:
        """Per-cycle replay of an aborted chunk.

        Reads are served from the chunk attempt's logs — per (kind, port),
        n-th call of an iteration maps to the n-th site in tick order, so
        every site receives exactly the values the attempt (and therefore
        the interpreter) saw.  Exhausted logs fall through to the live
        bus.  Writes go to the bus directly: the attempt buffered them,
        so no write has been issued yet."""
        program = self.program
        step = program.step_batched if batched else program.step_traced
        ports: dict[tuple[int, int], list] = {}
        for kind, io, tick, nid, seq in rl:
            ports.setdefault((kind, io), []).append((tick, nid, seq))
        for sites in ports.values():
            sites.sort(key=lambda s: (s[0], s[1]))
        counts: dict[tuple[int, int], int] = {}
        cursor = {"t": 0}

        def _served(key):
            i = counts.get(key, 0)
            counts[key] = i + 1
            sites = ports.get(key)
            if sites is None or i >= len(sites):
                return None
            seq = sites[i][2]
            t = cursor["t"]
            if isinstance(seq, list):
                return seq[t] if t < len(seq) else None
            return seq[..., t]

        def replay_read(io):
            value = _served((0, io))
            return bus.read(io) if value is None else value

        def replay_read_addr(io, addr):
            value = _served((1, io))
            return bus.read_addr(io, addr) if value is None else value

        done = 0
        word = "batched" if batched else "compiled"
        try:
            with np.errstate(over="raise", invalid="raise", divide="raise"):
                for t in range(T):
                    cursor["t"] = t
                    counts.clear()
                    step(R, replay_read, replay_read_addr, bus.write)
                    done += 1
        except FloatingPointError as exc:
            raise ExecutionError(
                f"non-finite value produced in iteration {base_iterations + done} "
                f"of the {word} kernel: {exc}"
            ) from exc
        finally:
            # Guard-raised ExecutionErrors (division by zero, sqrt of a
            # negative — interpreter-identical text) pass through raw;
            # completed iterations still count either way.
            progress[0] = done


def get_vector_program(program: CompiledProgram) -> VectorProgram:
    """The (cached) vector lowering of a compiled program."""
    vp = getattr(program, "_vector_program", None)
    if vp is None:
        vp = VectorProgram(program)
        program._vector_program = vp
    return vp
