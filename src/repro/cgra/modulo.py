"""Iterative modulo scheduling: automatic software pipelining.

The paper pipelines the beam model *by hand*, by a factor of two,
because its list scheduler has no software-pipelining support ("To
reduce the sequential nature, we manually pipelined the loop by a factor
of two").  A modulo scheduler generalises that transform: it overlaps an
unbounded number of iterations, initiating a new one every **II**
(initiation interval) ticks, with II bounded below by

* **ResMII** — resource pressure: each resource class can only issue so
  many operations per II window (the single SensorAccess port is the
  binding one for multi-bunch models), and
* **RecMII** — recurrences: a loop-carried dependence cycle of total
  latency L crossing d iteration boundaries forces II ≥ L/d.

This implementation is Rau's iterative modulo scheduling, simplified to
the overlay model used across this package (see *Model* below).  It is
used by the A6 ablation to answer: how much revolution-frequency
headroom is left on the table by pipelining only by a factor of two?

Model
-----
* a PE executes one operation at a time; an operation issued at ``t``
  occupies its PE's modulo reservation slots ``t mod II ...
  (t + occupancy - 1) mod II`` (occupancy = latency, or the SensorAccess
  issue window for IO ops);
* zero-time values (constants, parameters, loop-carried registers) are
  register reads with no resource cost;
* inter-PE routing is folded into the operation latencies (values move
  through the shared register context between iterations); this matches
  common modulo-scheduling formulations for CGRAs and keeps the
  comparison with the list scheduler conservative for the *list*
  scheduler (its lengths include explicit routing).

The scheduler validates every dependence (forward and loop-carried) and
every reservation before returning; semantic equivalence then follows
from the dataflow graph being unchanged — see
:class:`~repro.cgra.reference.ReferenceInterpreter` for the value-level
oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cgra.dfg import DataflowGraph, DFGNode
from repro.cgra.fabric import CgraFabric
from repro.cgra.ops import Op
from repro.cgra.scheduler import ListScheduler
from repro.errors import ScheduleError

__all__ = ["ModuloSchedule", "ModuloScheduler"]


@dataclass
class ModuloSchedule:
    """A software-pipelined schedule of one loop body."""

    graph: DataflowGraph
    fabric: CgraFabric
    #: Initiation interval: a new iteration starts every II ticks.
    ii: int
    #: Placement: node id → (pe, start tick within the flat schedule).
    ops: dict[int, tuple[tuple[int, int], int]] = field(default_factory=dict)
    #: Lower bounds that produced this II.
    res_mii: int = 0
    rec_mii: int = 0

    @property
    def length(self) -> int:
        """Flat schedule length (latency of one iteration's results)."""
        latencies = self.fabric.config.latencies
        return max(
            (start + latencies.of(self.graph.node(nid).op) for nid, (_, start) in self.ops.items()),
            default=0,
        )

    @property
    def stage_count(self) -> int:
        """Number of overlapped iterations in the steady-state kernel."""
        return max(1, math.ceil(self.length / self.ii)) if self.ii else 1

    def max_revolution_frequency(self, clock_hz: float = 111e6) -> float:
        """With initiation every II ticks, one revolution per II."""
        return clock_hz / self.ii

    def verify(self, f_rev: float | None = None):
        """Run the static verifier; return its diagnostic report.

        Non-raising counterpart of :meth:`validate` — see
        :func:`repro.cgra.verify.verify_modulo_schedule`.
        """
        # Imported lazily: repro.cgra.verify imports this module.
        from repro.cgra.verify import verify_modulo_schedule

        return verify_modulo_schedule(self, f_rev=f_rev)

    def validate(self) -> None:
        """Check dependences and modulo reservations; raise on violation."""
        latencies = self.fabric.config.latencies
        for node in self.graph.nodes.values():
            if node.is_zero_time():
                continue
            if node.node_id not in self.ops:
                raise ScheduleError(f"node {node.node_id} not scheduled")
        # Forward and loop-carried dependences.
        for node in self.graph.nodes.values():
            if node.is_zero_time():
                continue
            _, start = self.ops[node.node_id]
            for operand_id in node.operands:
                producer = self.graph.node(operand_id)
                if producer.op is Op.PHI:
                    src = self.graph.node(producer.back_edge)
                    if src.is_zero_time():
                        continue
                    _, p_start = self.ops[src.node_id]
                    finish = p_start + latencies.of(src.op)
                    # distance-1 dependence: available one iteration later.
                    if start + self.ii < finish:
                        raise ScheduleError(
                            f"recurrence violated: node {node.node_id} at {start} "
                            f"+ II={self.ii} before producer {src.node_id} "
                            f"finishes at {finish}"
                        )
                    continue
                if producer.is_zero_time():
                    continue
                _, p_start = self.ops[operand_id]
                finish = p_start + latencies.of(producer.op)
                if start < finish:
                    raise ScheduleError(
                        f"dependence violated: node {node.node_id} at {start} "
                        f"before producer {operand_id} finishes at {finish}"
                    )
        # Modulo reservation table.
        table: dict[tuple[tuple[int, int], int], int] = {}
        for nid, (pe, start) in self.ops.items():
            node = self.graph.node(nid)
            occupancy = (
                ListScheduler.IO_ISSUE_TICKS if node.is_io()
                else max(1, latencies.of(node.op))
            )
            if occupancy > self.ii:
                raise ScheduleError(
                    f"op {nid} occupancy {occupancy} exceeds II {self.ii}"
                )
            if not self.fabric.supports(pe, node.op):
                raise ScheduleError(f"PE {pe} cannot execute {node.op}")
            for k in range(occupancy):
                slot = (pe, (start + k) % self.ii)
                if slot in table:
                    raise ScheduleError(
                        f"modulo reservation conflict on PE {pe} slot "
                        f"{(start + k) % self.ii}: nodes {table[slot]} and {nid}"
                    )
                table[slot] = nid


class ModuloScheduler:
    """Iterative modulo scheduling on the overlay fabric."""

    def __init__(self, fabric: CgraFabric) -> None:
        self.fabric = fabric

    # -- lower bounds ---------------------------------------------------

    def resource_mii(self, graph: DataflowGraph) -> int:
        """ResMII from per-resource-class issue pressure."""
        latencies = self.fabric.config.latencies
        io_pressure = sum(
            ListScheduler.IO_ISSUE_TICKS for n in graph.nodes.values() if n.is_io()
        )
        heavy_ops = [
            n for n in graph.nodes.values()
            if n.op in (Op.FDIV, Op.FSQRT)
        ]
        heavy_pressure = sum(latencies.of(n.op) for n in heavy_ops)
        n_heavy = max(1, len(self.fabric.heavy_pes))
        basic_ops = [
            n for n in graph.nodes.values()
            if not n.is_zero_time() and not n.is_io() and n not in heavy_ops
        ]
        basic_pressure = sum(max(1, latencies.of(n.op)) for n in basic_ops)
        n_pes = len(self.fabric.pes)
        return max(
            1,
            io_pressure,  # single SensorAccess port
            math.ceil(heavy_pressure / n_heavy),
            math.ceil(basic_pressure / n_pes),
        )

    def recurrence_mii(self, graph: DataflowGraph) -> int:
        """RecMII from loop-carried dependence cycles (distance 1).

        Every cycle in this IR passes through exactly one PHI (the
        frontend produces one register per carried value), so RecMII is
        the longest latency path from any PHI's consumers to its
        back-edge producer.
        """
        latencies = self.fabric.config.latencies
        # Longest path *ending* at each node, starting from zero-time
        # sources (length counts the latencies of scheduled ops only).
        dist: dict[int, int] = {}
        phi_start: dict[int, dict[int, int]] = {}
        for node in graph.topological_order():
            if node.is_zero_time():
                dist[node.node_id] = 0
                continue
            best = 0
            for operand in node.operands:
                best = max(best, dist.get(operand, 0))
            dist[node.node_id] = best + latencies.of(node.op)
        rec = 1
        for phi in graph.phis():
            src = graph.node(phi.back_edge)
            if src.is_zero_time():
                continue
            # Longest latency chain from the PHI read to its back-edge
            # producer's completion: recompute dist restricted to paths
            # rooted at this PHI.
            local: dict[int, int] = {phi.node_id: 0}
            for node in graph.topological_order():
                if node.node_id in local or node.is_zero_time():
                    continue
                reachable = [
                    local[o] for o in node.operands if o in local
                ]
                if reachable:
                    local[node.node_id] = max(reachable) + latencies.of(node.op)
            if src.node_id in local:
                rec = max(rec, local[src.node_id])
        return rec

    # -- scheduling -------------------------------------------------------

    def schedule(self, graph: DataflowGraph, max_ii: int | None = None) -> ModuloSchedule:
        """Find the smallest feasible II and a valid placement for it."""
        graph.validate()
        res_mii = self.resource_mii(graph)
        rec_mii = self.recurrence_mii(graph)
        mii = max(res_mii, rec_mii)
        latencies = self.fabric.config.latencies
        # An op must fit its occupancy inside the II window.
        min_occ = max(
            (
                ListScheduler.IO_ISSUE_TICKS if n.is_io() else max(1, latencies.of(n.op))
                for n in graph.nodes.values()
                if not n.is_zero_time()
            ),
            default=1,
        )
        mii = max(mii, min_occ)
        upper = max_ii if max_ii is not None else max(4 * mii, mii + 256)
        last_error: ScheduleError | None = None
        for ii in range(mii, upper + 1):
            try:
                placed = self._try_ii(graph, ii)
            except ScheduleError as exc:
                last_error = exc
                continue
            result = ModuloSchedule(
                graph=graph, fabric=self.fabric, ii=ii, ops=placed,
                res_mii=res_mii, rec_mii=rec_mii,
            )
            try:
                result.validate()
            except ScheduleError as exc:
                last_error = exc
                continue
            return result
        raise ScheduleError(
            f"no feasible II in [{mii}, {upper}]"
            + (f": {last_error}" if last_error else "")
        )

    def _try_ii(self, graph: DataflowGraph, ii: int) -> dict[int, tuple[tuple[int, int], int]]:
        """One II attempt: topological placement with repair passes."""
        latencies = self.fabric.config.latencies
        order = [n for n in graph.topological_order() if not n.is_zero_time()]
        placed: dict[int, tuple[tuple[int, int], int]] = {}
        reservations: dict[tuple[tuple[int, int], int], int] = {}

        def occupancy_of(node: DFGNode) -> int:
            return (
                ListScheduler.IO_ISSUE_TICKS if node.is_io()
                else max(1, latencies.of(node.op))
            )

        def free(pe: tuple[int, int], start: int, occ: int) -> bool:
            return all(
                (pe, (start + k) % ii) not in reservations for k in range(occ)
            )

        def reserve(pe: tuple[int, int], start: int, occ: int, nid: int) -> None:
            for k in range(occ):
                reservations[(pe, (start + k) % ii)] = nid

        def release(pe: tuple[int, int], start: int, occ: int) -> None:
            for k in range(occ):
                reservations.pop((pe, (start + k) % ii), None)

        def earliest(node: DFGNode) -> int:
            est = 0
            for operand in node.operands:
                producer = graph.node(operand)
                if producer.is_zero_time():
                    continue
                if operand in placed:
                    _, p_start = placed[operand]
                    est = max(est, p_start + latencies.of(producer.op))
            return est

        def place(node: DFGNode) -> bool:
            occ = occupancy_of(node)
            if occ > ii:
                raise ScheduleError(f"occupancy {occ} of {node.op} exceeds II {ii}")
            est = earliest(node)
            candidates = (
                [self.fabric.io_pe] if node.is_io()
                else self.fabric.candidates(node.op)
            )
            # Try every start offset within one II window past the EST —
            # later offsets only repeat the same modulo slots.
            for delta in range(ii):
                start = est + delta
                for pe in candidates:
                    if free(pe, start, occ):
                        reserve(pe, start, occ, node.node_id)
                        placed[node.node_id] = (pe, start)
                        return True
            return False

        for node in order:
            if not place(node):
                raise ScheduleError(
                    f"cannot place node {node.node_id} ({node.op}) at II={ii}"
                )

        # Repair passes for recurrence violations: push the *first*
        # consumer chains later (consumers may start up to II-1 later
        # without changing their modulo slots' feasibility search).
        for _ in range(8):
            violation = self._find_recurrence_violation(graph, placed, ii)
            if violation is None:
                return placed
            consumer_id, needed_start = violation
            node = graph.node(consumer_id)
            pe, old_start = placed[consumer_id]
            occ = occupancy_of(node)
            release(pe, old_start, occ)
            moved = False
            for delta in range(ii):
                start = needed_start + delta
                for cand in (
                    [self.fabric.io_pe] if node.is_io() else self.fabric.candidates(node.op)
                ):
                    if free(cand, start, occ):
                        reserve(cand, start, occ, consumer_id)
                        placed[consumer_id] = (cand, start)
                        moved = True
                        break
                if moved:
                    break
            if not moved:
                raise ScheduleError(
                    f"repair failed for node {consumer_id} at II={ii}"
                )
            # Moving a node may break its forward consumers: re-place any
            # consumer that now starts too early.
            self._ripple_forward(graph, placed, reservations, ii, consumer_id)
        raise ScheduleError(f"recurrence repair did not converge at II={ii}")

    def _ripple_forward(self, graph, placed, reservations, ii, moved_id) -> None:
        latencies = self.fabric.config.latencies
        consumers = graph.consumers()
        from collections import deque

        queue = deque(consumers[moved_id])
        guard = 0
        while queue:
            guard += 1
            if guard > 10 * len(graph):
                raise ScheduleError("forward ripple did not converge")
            nid = queue.popleft()
            node = graph.node(nid)
            if node.is_zero_time() or nid not in placed:
                continue
            pe, start = placed[nid]
            est = 0
            for operand in node.operands:
                producer = graph.node(operand)
                if producer.is_zero_time() or operand not in placed:
                    continue
                _, p_start = placed[operand]
                est = max(est, p_start + latencies.of(producer.op))
            if start >= est:
                continue
            occ = (
                ListScheduler.IO_ISSUE_TICKS if node.is_io()
                else max(1, latencies.of(node.op))
            )
            for k in range(occ):
                reservations.pop((pe, (start + k) % ii), None)
            moved = False
            for delta in range(ii):
                new_start = est + delta
                for cand in (
                    [self.fabric.io_pe] if node.is_io() else self.fabric.candidates(node.op)
                ):
                    if all((cand, (new_start + k) % ii) not in reservations for k in range(occ)):
                        for k in range(occ):
                            reservations[(cand, (new_start + k) % ii)] = nid
                        placed[nid] = (cand, new_start)
                        moved = True
                        break
                if moved:
                    break
            if not moved:
                raise ScheduleError(f"forward ripple failed for node {nid}")
            queue.extend(consumers[nid])

    def _find_recurrence_violation(self, graph, placed, ii):
        """First (consumer, needed_start) breaking a distance-1 edge."""
        latencies = self.fabric.config.latencies
        for node in graph.nodes.values():
            if node.is_zero_time() or node.node_id not in placed:
                continue
            _, start = placed[node.node_id]
            for operand in node.operands:
                producer = graph.node(operand)
                if producer.op is not Op.PHI:
                    continue
                src = graph.node(producer.back_edge)
                if src.is_zero_time() or src.node_id not in placed:
                    continue
                _, p_start = placed[src.node_id]
                finish = p_start + latencies.of(src.op)
                if start + ii < finish:
                    return node.node_id, finish - ii
        return None
