"""ASCII rendering of CGRA schedules (debugging / teaching aid).

Renders a schedule as a per-PE Gantt chart in plain text — which PE
executes what at which tick, where the SensorAccess serialisation
bites, and how long the tail of the critical path is.  Used by the
``cgra_playground`` example and handy when calibrating
:class:`~repro.cgra.ops.OperatorLatencies` against a real overlay.
"""

from __future__ import annotations

from repro.cgra.modulo import ModuloSchedule
from repro.cgra.scheduler import ListScheduler, Schedule

__all__ = ["render_schedule", "render_modulo_kernel", "utilisation_bars"]

#: One letter per op family for the Gantt cells.
_OP_LETTER = {
    "fadd": "+", "fsub": "-", "fmul": "*", "fdiv": "/", "fsqrt": "r",
    "fneg": "n", "fmin": "m", "fmax": "M", "cmp_lt": "<", "cmp_le": "=",
    "select": "?", "sensor_read": "S", "sensor_read_addr": "A",
    "actuator_write": "W",
}


def render_schedule(schedule: Schedule, max_width: int = 160) -> str:
    """Per-PE Gantt chart of a list schedule.

    Each row is one PE; each column one tick (compressed if the schedule
    exceeds ``max_width`` columns).  Occupied ticks show the operation's
    letter, idle ticks a dot.
    """
    length = max(schedule.length, 1)
    step = max(1, -(-length // max_width))  # ceil division
    columns = -(-length // step)
    lines = [
        f"schedule: {length} ticks on {len(schedule.fabric.pes)} PEs"
        + (f" (1 col = {step} ticks)" if step > 1 else "")
    ]
    latencies = schedule.fabric.config.latencies
    for pe in schedule.fabric.pes:
        row = ["."] * columns
        for placed in schedule.ops_on_pe(pe):
            node = schedule.graph.node(placed.node_id)
            occupancy = (
                ListScheduler.IO_ISSUE_TICKS if node.is_io()
                else max(1, latencies.of(placed.op))
            )
            letter = _OP_LETTER.get(placed.op.value, "x")
            for tick in range(placed.start, placed.start + occupancy):
                col = tick // step
                if col < columns:
                    row[col] = letter
        marker = " io" if pe == schedule.fabric.io_pe else (
            " hv" if pe in schedule.fabric.heavy_pes else "   "
        )
        lines.append(f"PE{pe[0]},{pe[1]}{marker} |{''.join(row)}|")
    lines.append(
        "legend: +-*/ arithmetic, r sqrt, S/A sensor reads, W actuator "
        "write, ? select; io = SensorAccess PE, hv = div/sqrt-capable"
    )
    return "\n".join(lines)


def render_modulo_kernel(schedule: ModuloSchedule, max_width: int = 160) -> str:
    """Steady-state kernel of a modulo schedule: one II window per PE."""
    ii = schedule.ii
    step = max(1, -(-ii // max_width))
    columns = -(-ii // step)
    lines = [
        f"modulo kernel: II = {ii} ticks "
        f"(ResMII {schedule.res_mii}, RecMII {schedule.rec_mii}, "
        f"{schedule.stage_count} overlapped iterations)"
    ]
    latencies = schedule.fabric.config.latencies
    by_pe: dict[tuple[int, int], list[tuple[int, str, int]]] = {}
    for nid, (pe, start) in schedule.ops.items():
        node = schedule.graph.node(nid)
        occupancy = (
            ListScheduler.IO_ISSUE_TICKS if node.is_io()
            else max(1, latencies.of(node.op))
        )
        letter = _OP_LETTER.get(node.op.value, "x")
        by_pe.setdefault(pe, []).append((start, letter, occupancy))
    for pe in schedule.fabric.pes:
        row = ["."] * columns
        for start, letter, occupancy in by_pe.get(pe, []):
            for k in range(occupancy):
                col = ((start + k) % ii) // step
                if col < columns:
                    row[col] = letter
        marker = " io" if pe == schedule.fabric.io_pe else (
            " hv" if pe in schedule.fabric.heavy_pes else "   "
        )
        lines.append(f"PE{pe[0]},{pe[1]}{marker} |{''.join(row)}|")
    return "\n".join(lines)


def utilisation_bars(schedule: Schedule, width: int = 40) -> str:
    """Horizontal utilisation bars, one per PE."""
    lines = []
    for pe, util in sorted(schedule.pe_utilisation().items()):
        filled = int(round(util * width))
        bar = "#" * filled + "-" * (width - filled)
        lines.append(f"PE{pe[0]},{pe[1]} [{bar}] {util * 100:5.1f}%")
    return "\n".join(lines)
