"""Cycle-accurate execution of modulo schedules (overlapped iterations).

:class:`~repro.cgra.executor.CgraExecutor` runs one iteration at a time;
a modulo schedule initiates a new iteration every II ticks *before* the
previous one finishes, so its execution interleaves operations of
several iterations on the global timeline.  :class:`PipelinedExecutor`
simulates exactly that: operation *o* of iteration *k* fires at global
tick ``k·II + start(o)``, operations are processed in global tick order,
and values live in per-iteration registers (the rotating-register-file
view of software pipelining).

Two properties follow, and the tests pin both:

* **value equivalence** — per iteration, every produced value equals the
  sequential executor's (the dependence constraints of
  :meth:`~repro.cgra.modulo.ModuloSchedule.validate` are exactly what
  makes this true);
* **IO interleaving** — SensorAccess operations of *different* ids from
  neighbouring iterations may interleave in time (real pipelined
  hardware behaviour), but the per-id order follows iteration order, so
  independent per-id bus handlers observe the sequential history.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.cgra.engine import _ENGINE_ITERATIONS, _ITERS_PER_SECOND, resolve_engine
from repro.cgra.modulo import ModuloSchedule
from repro.cgra.ops import Op
from repro.cgra.sensor import SensorBus
from repro.errors import ExecutionError, VerificationError
from repro.obs import get_registry
from repro.obs._state import STATE as _OBS

__all__ = ["PipelinedExecutor"]

_OPS_EXECUTED = get_registry().counter(
    "cgra_ops_executed_total", "operations executed by the CGRA executors"
)
_CONTEXT_SWITCHES = get_registry().counter(
    "cgra_context_switches_total", "context switches (ticks) executed"
)
_TICKS_PER_ITER = get_registry().gauge(
    "cgra_ticks_per_iteration", "schedule length of the running model"
)
_ITERATIONS = get_registry().counter(
    "cgra_iterations_total", "model iterations executed"
)


@dataclass(frozen=True)
class _Event:
    tick: int
    iteration: int
    node_id: int


class PipelinedExecutor:
    """Executes a :class:`~repro.cgra.modulo.ModuloSchedule`.

    Parameters mirror :class:`~repro.cgra.executor.CgraExecutor`.
    """

    def __init__(
        self,
        schedule: ModuloSchedule,
        bus: SensorBus,
        params: dict[str, float] | None = None,
        precision: str = "single",
        verify: bool = False,
        engine: str | None = None,
    ) -> None:
        if precision not in ("single", "double"):
            raise ExecutionError(f"precision must be 'single' or 'double', got {precision!r}")
        if verify:
            # Imported lazily: repro.cgra.verify imports the scheduler.
            from repro.cgra.verify import Severity, verify_modulo_schedule

            report = verify_modulo_schedule(schedule)
            if not report.ok:
                raise VerificationError(
                    "modulo schedule failed static verification:\n"
                    + report.format(min_severity=Severity.WARNING)
                )
        schedule.validate()
        self.schedule = schedule
        self.graph = schedule.graph
        self.bus = bus
        self._ftype = np.float32 if precision == "single" else np.float64
        params = dict(params or {})
        missing = [p for p in self.graph.params if p not in params]
        if missing:
            raise ExecutionError(f"missing parameter values: {missing}")
        self._params = {k: self._round(v) for k, v in params.items()}
        #: Static (iteration-independent) values: constants and params.
        self._static: dict[int, float] = {}
        for node in self.graph.nodes.values():
            if node.op is Op.CONST:
                self._static[node.node_id] = self._round(node.value)
            elif node.op is Op.PARAM:
                self._static[node.node_id] = self._params[node.name]
        #: Per-(node, iteration) values of scheduled operations.
        self._values: dict[tuple[int, int], float] = {}
        self.iterations = 0
        #: First scheduled node per name, in graph insertion order —
        #: precomputed so :meth:`value_of` is O(1) instead of an O(N)
        #: scan of ``graph.nodes`` per call.
        self._named_scheduled: dict[str, int] = {}
        for node in self.graph.nodes.values():
            if node.name and not node.is_zero_time():
                self._named_scheduled.setdefault(node.name, node.node_id)
        self.engine = resolve_engine(engine)
        if self.engine in ("vector", "auto"):
            # The pipelined executor interleaves in-flight iterations, so
            # no iteration-chunking is possible; "vector" (and therefore
            # "auto", whose only alternative tier is the chunk path)
            # degrades to the compiled per-cycle path (same results — the
            # vector tier's chunk path is an optimisation, not a semantic
            # change).
            self.engine = "compiled"
        if self.engine == "compiled":
            self._build_compiled()

    def _round(self, value: float) -> float:
        return float(self._ftype(value))

    def _phi_value(self, phi, iteration: int) -> float:
        if iteration == 0:
            if phi.init_param is not None:
                return self._params[phi.init_param]
            return self._round(phi.init_value)
        return self._operand_value(phi.back_edge, iteration - 1)

    def _operand_value(self, node_id: int, iteration: int) -> float:
        node = self.graph.node(node_id)
        if node.op in (Op.CONST, Op.PARAM):
            return self._static[node_id]
        if node.op is Op.PHI:
            return self._phi_value(node, iteration)
        try:
            return self._values[(node_id, iteration)]
        except KeyError:
            raise ExecutionError(
                f"value of node {node_id} iteration {iteration} not yet "
                "computed — dependence constraints violated"
            ) from None

    def _apply(self, op: Op, args: list[float], node_id: int) -> float:
        f = self._ftype
        with np.errstate(over="ignore", invalid="ignore"):
            if op is Op.FADD:
                value = float(f(f(args[0]) + f(args[1])))
            elif op is Op.FSUB:
                value = float(f(f(args[0]) - f(args[1])))
            elif op is Op.FMUL:
                value = float(f(f(args[0]) * f(args[1])))
            elif op is Op.FDIV:
                if args[1] == 0.0:
                    raise ExecutionError(f"division by zero in node {node_id}")
                value = float(f(f(args[0]) / f(args[1])))
            elif op is Op.FSQRT:
                if args[0] < 0.0:
                    raise ExecutionError(f"sqrt of negative in node {node_id}")
                value = float(f(np.sqrt(f(args[0]))))
            elif op is Op.FNEG:
                value = float(f(-f(args[0])))
            elif op is Op.FMIN:
                value = float(f(min(args[0], args[1])))
            elif op is Op.FMAX:
                value = float(f(max(args[0], args[1])))
            elif op is Op.CMP_LT:
                value = 1.0 if args[0] < args[1] else 0.0
            elif op is Op.CMP_LE:
                value = 1.0 if args[0] <= args[1] else 0.0
            elif op is Op.SELECT:
                value = args[1] if args[0] != 0.0 else args[2]
            else:  # pragma: no cover - exhaustive
                raise ExecutionError(f"unhandled op {op}")
        if not math.isfinite(value):
            raise ExecutionError(f"non-finite value in node {node_id}")
        return value

    # -- compiled engine ------------------------------------------------

    def _build_compiled(self) -> None:
        """Lower the modulo schedule into a closure-per-node tick plan.

        Values live in rotating per-node rows of depth ``stage_count + 3``
        (deep enough for every legal cross-stage read plus the PHI
        back-edge into the next iteration); a parallel tag row records
        which iteration each slot currently holds, so :meth:`value_of`
        can still detect reads of unretained iterations.  Nodes are
        bucketed by schedule phase (``start % II``) so the tick loop
        touches only the ops that actually fire on each tick, in the
        interpreter's exact (tick, node id) order.
        """
        ii = self.schedule.ii
        depth = max(1, self.schedule.stage_count) + 3
        self._depth = depth
        rows = {nid: [0.0] * depth for nid in self.schedule.ops}
        tag_rows = {nid: [-2] * depth for nid in self.schedule.ops}
        self._rows = rows
        self._tag_rows = tag_rows
        by_phase: list[list] = [[] for _ in range(ii)]
        for nid, (_pe, start) in self.schedule.ops.items():
            fn = self._make_node_fn(nid, rows)
            by_phase[start % ii].append((start, nid, fn, rows[nid], tag_rows[nid]))
        for bucket in by_phase:
            bucket.sort(key=lambda entry: entry[1])
        self._by_phase = by_phase
        starts = [start for (_pe, start) in self.schedule.ops.values()]
        self._min_start = min(starts) if starts else 0
        self._max_start = max(starts) if starts else -1

    def _make_operand(self, node_id: int, rows: dict[int, list]) -> callable:
        """Accessor closure ``get(iteration) -> float`` for one operand."""
        node = self.graph.node(node_id)
        if node.op in (Op.CONST, Op.PARAM):
            constant = self._static[node_id]
            return lambda k: constant
        if node.op is Op.PHI:
            if node.init_param is not None:
                init = self._params[node.init_param]
            else:
                init = self._round(node.init_value)
            inner = self._make_operand(node.back_edge, rows)
            return lambda k: init if k == 0 else inner(k - 1)
        row = rows[node_id]
        depth = self._depth
        return lambda k: row[k % depth]

    def _make_node_fn(self, nid: int, rows: dict[int, list]) -> callable:
        """Closure ``fn(iteration) -> float`` computing one scheduled op.

        Per-op float32/float64 rounding matches :meth:`_apply` exactly;
        non-finite results are detected by the ``np.errstate`` guard
        around the tick loop instead of a per-op ``isfinite`` check.
        """
        node = self.graph.node(nid)
        op = node.op
        ft = self._ftype
        rnd = self._round
        if op is Op.SENSOR_READ:
            read, sid = self.bus.read, node.sensor_id
            return lambda k: rnd(read(sid))
        if op is Op.SENSOR_READ_ADDR:
            read_addr, sid = self.bus.read_addr, node.sensor_id
            a0 = self._make_operand(node.operands[0], rows)
            return lambda k: rnd(read_addr(sid, a0(k)))
        if op is Op.ACTUATOR_WRITE:
            write, sid = self.bus.write, node.sensor_id
            a0 = self._make_operand(node.operands[0], rows)

            def fn_write(k):
                write(sid, a0(k))
                return 0.0

            return fn_write
        args = [self._make_operand(o, rows) for o in node.operands]
        if op is Op.FADD:
            a0, a1 = args
            return lambda k: float(ft(ft(a0(k)) + ft(a1(k))))
        if op is Op.FSUB:
            a0, a1 = args
            return lambda k: float(ft(ft(a0(k)) - ft(a1(k))))
        if op is Op.FMUL:
            a0, a1 = args
            return lambda k: float(ft(ft(a0(k)) * ft(a1(k))))
        if op is Op.FDIV:
            a0, a1 = args

            def fn_div(k):
                b = a1(k)
                if b == 0.0:
                    raise ExecutionError(f"division by zero in node {nid}")
                return float(ft(ft(a0(k)) / ft(b)))

            return fn_div
        if op is Op.FSQRT:
            a0 = args[0]
            _sqrt = np.sqrt

            def fn_sqrt(k):
                a = a0(k)
                if a < 0.0:
                    raise ExecutionError(f"sqrt of negative in node {nid}")
                return float(ft(_sqrt(ft(a))))

            return fn_sqrt
        if op is Op.FNEG:
            a0 = args[0]
            return lambda k: float(ft(-ft(a0(k))))
        if op is Op.FMIN:
            a0, a1 = args
            return lambda k: float(ft(min(a0(k), a1(k))))
        if op is Op.FMAX:
            a0, a1 = args
            return lambda k: float(ft(max(a0(k), a1(k))))
        if op is Op.CMP_LT:
            a0, a1 = args
            return lambda k: 1.0 if a0(k) < a1(k) else 0.0
        if op is Op.CMP_LE:
            a0, a1 = args
            return lambda k: 1.0 if a0(k) <= a1(k) else 0.0
        if op is Op.SELECT:
            a0, a1, a2 = args
            return lambda k: a1(k) if a0(k) != 0.0 else a2(k)
        raise ExecutionError(f"unhandled op {op}")  # pragma: no cover

    def _run_compiled(self, n_iterations: int) -> None:
        ii = self.schedule.ii
        base = self.iterations
        end = base + n_iterations
        by_phase = self._by_phase
        t_begin = base * ii + self._min_start
        t_end = (end - 1) * ii + self._max_start
        started = time.perf_counter()
        try:
            with np.errstate(over="raise", invalid="raise", divide="raise"):
                for t in range(t_begin, t_end + 1):
                    for start, _nid, fn, row, tagrow in by_phase[t % ii]:
                        k = (t - start) // ii
                        if base <= k < end:
                            slot = k % self._depth
                            row[slot] = fn(k)
                            tagrow[slot] = k
        except FloatingPointError as exc:
            raise ExecutionError(
                f"non-finite value produced in the pipelined compiled kernel: {exc}"
            ) from None
        elapsed = time.perf_counter() - started
        self.iterations = end
        if _OBS.enabled:
            _OPS_EXECUTED.inc(n_iterations * len(self.schedule.ops), executor="pipelined")
            _CONTEXT_SWITCHES.inc(n_iterations * ii, executor="pipelined")
            _TICKS_PER_ITER.set(ii, executor="pipelined")
            _ITERATIONS.inc(n_iterations, executor="pipelined")
            _ENGINE_ITERATIONS.inc(n_iterations, engine="compiled")
            if elapsed > 0.0:
                _ITERS_PER_SECOND.set(n_iterations / elapsed, engine="compiled")

    def run(self, n_iterations: int) -> None:
        """Execute ``n_iterations`` overlapped iterations to completion.

        Events are processed in global tick order (ties broken by node
        id, matching the per-PE determinism of the hardware), so the IO
        stream seen by the bus is the genuine pipelined interleaving.
        """
        if n_iterations < 0:
            raise ExecutionError("n_iterations must be non-negative")
        if n_iterations == 0:
            return
        if self.engine == "compiled":
            self._run_compiled(n_iterations)
            return
        ii = self.schedule.ii
        base = self.iterations
        events: list[_Event] = []
        for k in range(base, base + n_iterations):
            for nid, (_pe, start) in self.schedule.ops.items():
                events.append(_Event(tick=k * ii + start, iteration=k, node_id=nid))
        events.sort(key=lambda e: (e.tick, e.node_id))

        stage_span = max(1, self.schedule.stage_count) + 1
        for event in events:
            node = self.graph.node(event.node_id)
            if node.op is Op.SENSOR_READ:
                value = self._round(self.bus.read(node.sensor_id))
            elif node.op is Op.SENSOR_READ_ADDR:
                addr = self._operand_value(node.operands[0], event.iteration)
                value = self._round(self.bus.read_addr(node.sensor_id, addr))
            elif node.op is Op.ACTUATOR_WRITE:
                self.bus.write(
                    node.sensor_id,
                    self._operand_value(node.operands[0], event.iteration),
                )
                value = 0.0
            else:
                args = [
                    self._operand_value(o, event.iteration) for o in node.operands
                ]
                value = self._apply(node.op, args, event.node_id)
            self._values[(event.node_id, event.iteration)] = value
            # Prune values older than the deepest overlap window.
            stale = event.iteration - stage_span
            if stale >= 0:
                for nid in self.schedule.ops:
                    self._values.pop((nid, stale), None)
        self.iterations = base + n_iterations
        if _OBS.enabled:
            # One bulk update per run() call: in steady state a new
            # iteration initiates every II ticks.
            _OPS_EXECUTED.inc(len(events), executor="pipelined")
            _CONTEXT_SWITCHES.inc(n_iterations * ii, executor="pipelined")
            _TICKS_PER_ITER.set(ii, executor="pipelined")
            _ITERATIONS.inc(n_iterations, executor="pipelined")
            _ENGINE_ITERATIONS.inc(n_iterations, engine="interpreted")

    def value_of(self, name: str, iteration: int | None = None) -> float:
        """Value a named node produced in ``iteration`` (default: the
        last fully retained one)."""
        nid = self._named_scheduled.get(name)
        if nid is None:
            raise ExecutionError(f"no scheduled node named {name!r}")
        it = iteration if iteration is not None else self.iterations - 1
        if self.engine == "compiled":
            slot = it % self._depth
            if it < 0 or self._tag_rows[nid][slot] != it:
                raise ExecutionError(
                    f"value of node {nid} iteration {it} not yet "
                    "computed — dependence constraints violated"
                )
            return self._rows[nid][slot]
        return self._operand_value(nid, it)
