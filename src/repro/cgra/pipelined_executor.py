"""Cycle-accurate execution of modulo schedules (overlapped iterations).

:class:`~repro.cgra.executor.CgraExecutor` runs one iteration at a time;
a modulo schedule initiates a new iteration every II ticks *before* the
previous one finishes, so its execution interleaves operations of
several iterations on the global timeline.  :class:`PipelinedExecutor`
simulates exactly that: operation *o* of iteration *k* fires at global
tick ``k·II + start(o)``, operations are processed in global tick order,
and values live in per-iteration registers (the rotating-register-file
view of software pipelining).

Two properties follow, and the tests pin both:

* **value equivalence** — per iteration, every produced value equals the
  sequential executor's (the dependence constraints of
  :meth:`~repro.cgra.modulo.ModuloSchedule.validate` are exactly what
  makes this true);
* **IO interleaving** — SensorAccess operations of *different* ids from
  neighbouring iterations may interleave in time (real pipelined
  hardware behaviour), but the per-id order follows iteration order, so
  independent per-id bus handlers observe the sequential history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cgra.modulo import ModuloSchedule
from repro.cgra.ops import Op
from repro.cgra.sensor import SensorBus
from repro.errors import ExecutionError, VerificationError
from repro.obs import get_registry
from repro.obs._state import STATE as _OBS

__all__ = ["PipelinedExecutor"]

_OPS_EXECUTED = get_registry().counter(
    "cgra_ops_executed_total", "operations executed by the CGRA executors"
)
_CONTEXT_SWITCHES = get_registry().counter(
    "cgra_context_switches_total", "context switches (ticks) executed"
)
_TICKS_PER_ITER = get_registry().gauge(
    "cgra_ticks_per_iteration", "schedule length of the running model"
)
_ITERATIONS = get_registry().counter(
    "cgra_iterations_total", "model iterations executed"
)


@dataclass(frozen=True)
class _Event:
    tick: int
    iteration: int
    node_id: int


class PipelinedExecutor:
    """Executes a :class:`~repro.cgra.modulo.ModuloSchedule`.

    Parameters mirror :class:`~repro.cgra.executor.CgraExecutor`.
    """

    def __init__(
        self,
        schedule: ModuloSchedule,
        bus: SensorBus,
        params: dict[str, float] | None = None,
        precision: str = "single",
        verify: bool = False,
    ) -> None:
        if precision not in ("single", "double"):
            raise ExecutionError(f"precision must be 'single' or 'double', got {precision!r}")
        if verify:
            # Imported lazily: repro.cgra.verify imports the scheduler.
            from repro.cgra.verify import Severity, verify_modulo_schedule

            report = verify_modulo_schedule(schedule)
            if not report.ok:
                raise VerificationError(
                    "modulo schedule failed static verification:\n"
                    + report.format(min_severity=Severity.WARNING)
                )
        schedule.validate()
        self.schedule = schedule
        self.graph = schedule.graph
        self.bus = bus
        self._ftype = np.float32 if precision == "single" else np.float64
        params = dict(params or {})
        missing = [p for p in self.graph.params if p not in params]
        if missing:
            raise ExecutionError(f"missing parameter values: {missing}")
        self._params = {k: self._round(v) for k, v in params.items()}
        #: Static (iteration-independent) values: constants and params.
        self._static: dict[int, float] = {}
        for node in self.graph.nodes.values():
            if node.op is Op.CONST:
                self._static[node.node_id] = self._round(node.value)
            elif node.op is Op.PARAM:
                self._static[node.node_id] = self._params[node.name]
        #: Per-(node, iteration) values of scheduled operations.
        self._values: dict[tuple[int, int], float] = {}
        self.iterations = 0

    def _round(self, value: float) -> float:
        return float(self._ftype(value))

    def _phi_value(self, phi, iteration: int) -> float:
        if iteration == 0:
            if phi.init_param is not None:
                return self._params[phi.init_param]
            return self._round(phi.init_value)
        return self._operand_value(phi.back_edge, iteration - 1)

    def _operand_value(self, node_id: int, iteration: int) -> float:
        node = self.graph.node(node_id)
        if node.op in (Op.CONST, Op.PARAM):
            return self._static[node_id]
        if node.op is Op.PHI:
            return self._phi_value(node, iteration)
        try:
            return self._values[(node_id, iteration)]
        except KeyError:
            raise ExecutionError(
                f"value of node {node_id} iteration {iteration} not yet "
                "computed — dependence constraints violated"
            ) from None

    def _apply(self, op: Op, args: list[float], node_id: int) -> float:
        f = self._ftype
        with np.errstate(over="ignore", invalid="ignore"):
            if op is Op.FADD:
                value = float(f(f(args[0]) + f(args[1])))
            elif op is Op.FSUB:
                value = float(f(f(args[0]) - f(args[1])))
            elif op is Op.FMUL:
                value = float(f(f(args[0]) * f(args[1])))
            elif op is Op.FDIV:
                if args[1] == 0.0:
                    raise ExecutionError(f"division by zero in node {node_id}")
                value = float(f(f(args[0]) / f(args[1])))
            elif op is Op.FSQRT:
                if args[0] < 0.0:
                    raise ExecutionError(f"sqrt of negative in node {node_id}")
                value = float(f(np.sqrt(f(args[0]))))
            elif op is Op.FNEG:
                value = float(f(-f(args[0])))
            elif op is Op.FMIN:
                value = float(f(min(args[0], args[1])))
            elif op is Op.FMAX:
                value = float(f(max(args[0], args[1])))
            elif op is Op.CMP_LT:
                value = 1.0 if args[0] < args[1] else 0.0
            elif op is Op.CMP_LE:
                value = 1.0 if args[0] <= args[1] else 0.0
            elif op is Op.SELECT:
                value = args[1] if args[0] != 0.0 else args[2]
            else:  # pragma: no cover - exhaustive
                raise ExecutionError(f"unhandled op {op}")
        if not math.isfinite(value):
            raise ExecutionError(f"non-finite value in node {node_id}")
        return value

    def run(self, n_iterations: int) -> None:
        """Execute ``n_iterations`` overlapped iterations to completion.

        Events are processed in global tick order (ties broken by node
        id, matching the per-PE determinism of the hardware), so the IO
        stream seen by the bus is the genuine pipelined interleaving.
        """
        if n_iterations < 0:
            raise ExecutionError("n_iterations must be non-negative")
        if n_iterations == 0:
            return
        ii = self.schedule.ii
        base = self.iterations
        events: list[_Event] = []
        for k in range(base, base + n_iterations):
            for nid, (_pe, start) in self.schedule.ops.items():
                events.append(_Event(tick=k * ii + start, iteration=k, node_id=nid))
        events.sort(key=lambda e: (e.tick, e.node_id))

        stage_span = max(1, self.schedule.stage_count) + 1
        for event in events:
            node = self.graph.node(event.node_id)
            if node.op is Op.SENSOR_READ:
                value = self._round(self.bus.read(node.sensor_id))
            elif node.op is Op.SENSOR_READ_ADDR:
                addr = self._operand_value(node.operands[0], event.iteration)
                value = self._round(self.bus.read_addr(node.sensor_id, addr))
            elif node.op is Op.ACTUATOR_WRITE:
                self.bus.write(
                    node.sensor_id,
                    self._operand_value(node.operands[0], event.iteration),
                )
                value = 0.0
            else:
                args = [
                    self._operand_value(o, event.iteration) for o in node.operands
                ]
                value = self._apply(node.op, args, event.node_id)
            self._values[(event.node_id, event.iteration)] = value
            # Prune values older than the deepest overlap window.
            stale = event.iteration - stage_span
            if stale >= 0:
                for nid in self.schedule.ops:
                    self._values.pop((nid, stale), None)
        self.iterations = base + n_iterations
        if _OBS.enabled:
            # One bulk update per run() call: in steady state a new
            # iteration initiates every II ticks.
            _OPS_EXECUTED.inc(len(events), executor="pipelined")
            _CONTEXT_SWITCHES.inc(n_iterations * ii, executor="pipelined")
            _TICKS_PER_ITER.set(ii, executor="pipelined")
            _ITERATIONS.inc(n_iterations, executor="pipelined")

    def value_of(self, name: str, iteration: int | None = None) -> float:
        """Value a named node produced in ``iteration`` (default: the
        last fully retained one)."""
        target = None
        for node in self.graph.nodes.values():
            if node.name == name and not node.is_zero_time():
                target = node
                break
        if target is None:
            raise ExecutionError(f"no scheduled node named {name!r}")
        it = iteration if iteration is not None else self.iterations - 1
        return self._operand_value(target.node_id, it)
