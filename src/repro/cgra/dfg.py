"""Dataflow-graph intermediate representation (the paper's SCAR).

The frontend lowers the C model into one :class:`DataflowGraph` per
steady-state loop body.  Nodes are operations in SSA form; loop-carried
values are represented by :data:`~repro.cgra.ops.Op.PHI` nodes whose
``back_edge`` names the node computing the next-iteration value and whose
``init_value``/``init_param`` provide the first iteration's input.

The graph must be acyclic apart from the implicit PHI back edges — that
invariant is what lets the list scheduler treat one loop body as a DAG
(PHI values are register reads available at tick 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.cgra.ops import IO_OPS, ZERO_TIME_OPS, Op
from repro.errors import CgraError

__all__ = ["DFGNode", "DataflowGraph"]


@dataclass
class DFGNode:
    """One SSA operation.

    Attributes
    ----------
    node_id:
        Unique integer id within the graph.
    op:
        The operation.
    operands:
        ids of the nodes producing this node's inputs, in order.
    value:
        Constant value (``CONST`` nodes only).
    name:
        Debug name — source variable or synthesised label.
    sensor_id:
        Sensor/actuator identifier for IO operations.
    back_edge:
        For ``PHI`` nodes: id of the node whose value feeds the next
        iteration.
    init_value / init_param:
        For ``PHI`` nodes: first-iteration input, either a literal or the
        name of a live-in parameter.
    """

    node_id: int
    op: Op
    operands: list[int] = field(default_factory=list)
    value: float | None = None
    name: str = ""
    sensor_id: int | None = None
    back_edge: int | None = None
    init_value: float | None = None
    init_param: str | None = None

    def is_io(self) -> bool:
        """True for SensorAccess operations (they share one port)."""
        return self.op in IO_OPS

    def is_zero_time(self) -> bool:
        """True for preloaded values (constants, params, PHI registers)."""
        return self.op in ZERO_TIME_OPS


class DataflowGraph:
    """SSA dataflow graph of one steady-state loop body."""

    def __init__(self, name: str = "kernel") -> None:
        self.name = name
        self.nodes: dict[int, DFGNode] = {}
        self._next_id = 0
        #: Names of live-in parameters (host-provided scalars).
        self.params: list[str] = []

    # -- construction -------------------------------------------------

    def _new_node(self, op: Op, operands: list[int], **kw) -> DFGNode:
        for oid in operands:
            if oid not in self.nodes:
                raise CgraError(f"operand {oid} not in graph")
        node = DFGNode(node_id=self._next_id, op=op, operands=list(operands), **kw)
        self.nodes[node.node_id] = node
        self._next_id += 1
        return node

    def add_const(self, value: float, name: str = "") -> DFGNode:
        """Add a compile-time constant."""
        return self._new_node(Op.CONST, [], value=float(value), name=name)

    def add_param(self, name: str) -> DFGNode:
        """Add a live-in parameter (value supplied at load time)."""
        if name not in self.params:
            self.params.append(name)
        return self._new_node(Op.PARAM, [], name=name)

    def add_op(self, op: Op, operands: list[int], name: str = "") -> DFGNode:
        """Add an arithmetic/compare/select operation."""
        if op in ZERO_TIME_OPS or op in IO_OPS:
            raise CgraError(f"use the dedicated adder for {op}")
        return self._new_node(op, operands, name=name)

    def add_phi(self, name: str, init_value: float | None = None, init_param: str | None = None) -> DFGNode:
        """Add a loop-carried register; bind its source later."""
        if (init_value is None) == (init_param is None):
            raise CgraError("phi needs exactly one of init_value / init_param")
        if init_param is not None and init_param not in self.params:
            self.params.append(init_param)
        return self._new_node(Op.PHI, [], name=name, init_value=init_value, init_param=init_param)

    def bind_phi(self, phi: DFGNode, source: DFGNode) -> None:
        """Set the back edge of a PHI to the node producing next iteration's value."""
        if phi.op is not Op.PHI:
            raise CgraError(f"node {phi.node_id} is not a PHI")
        if source.node_id not in self.nodes:
            raise CgraError(f"source {source.node_id} not in graph")
        phi.back_edge = source.node_id

    def add_sensor_read(self, sensor_id: int, name: str = "") -> DFGNode:
        """Add an address-less sensor read."""
        return self._new_node(Op.SENSOR_READ, [], sensor_id=int(sensor_id), name=name)

    def add_sensor_read_addr(self, sensor_id: int, addr: DFGNode, name: str = "") -> DFGNode:
        """Add an addressed sensor read (ring-buffer fetch)."""
        return self._new_node(
            Op.SENSOR_READ_ADDR, [addr.node_id], sensor_id=int(sensor_id), name=name
        )

    def add_actuator_write(self, actuator_id: int, value: DFGNode, name: str = "") -> DFGNode:
        """Add an actuator write (e.g. the Δt output)."""
        return self._new_node(
            Op.ACTUATOR_WRITE, [value.node_id], sensor_id=int(actuator_id), name=name
        )

    # -- queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> DFGNode:
        """Look up a node by id."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise CgraError(f"no node {node_id} in graph {self.name!r}") from None

    def phis(self) -> list[DFGNode]:
        """All loop-carried registers."""
        return [n for n in self.nodes.values() if n.op is Op.PHI]

    def io_nodes(self) -> list[DFGNode]:
        """All SensorAccess operations."""
        return [n for n in self.nodes.values() if n.is_io()]

    def consumers(self) -> dict[int, list[int]]:
        """Map node id → ids of nodes consuming its value (forward edges)."""
        out: dict[int, list[int]] = {nid: [] for nid in self.nodes}
        for n in self.nodes.values():
            for src in n.operands:
                out[src].append(n.node_id)
        return out

    def validate(self) -> None:
        """Check SSA and acyclicity invariants; raise :class:`CgraError`.

        * every operand id exists,
        * every PHI has a bound back edge,
        * the forward-edge graph (ignoring back edges) is acyclic,
        * exactly the operations of each type have operand counts
          matching their arity.
        """
        arity = {
            Op.CONST: 0, Op.PARAM: 0, Op.PHI: 0,
            Op.FADD: 2, Op.FSUB: 2, Op.FMUL: 2, Op.FDIV: 2,
            Op.FSQRT: 1, Op.FNEG: 1, Op.FMIN: 2, Op.FMAX: 2,
            Op.CMP_LT: 2, Op.CMP_LE: 2, Op.SELECT: 3,
            Op.SENSOR_READ: 0, Op.SENSOR_READ_ADDR: 1, Op.ACTUATOR_WRITE: 1,
        }
        for n in self.nodes.values():
            if len(n.operands) != arity[n.op]:
                raise CgraError(
                    f"node {n.node_id} ({n.op}) has {len(n.operands)} operands, "
                    f"expected {arity[n.op]}"
                )
            if n.op is Op.PHI and n.back_edge is None:
                raise CgraError(
                    f"PHI node {n.node_id} ({n.name!r}) has no back edge: "
                    "its loop-carried source was never bound via bind_phi()"
                )
            if n.op is Op.PHI and n.back_edge not in self.nodes:
                raise CgraError(f"PHI node {n.node_id} back edge {n.back_edge} missing")
            if n.op is Op.PHI and (n.init_value is None) == (n.init_param is None):
                raise CgraError(
                    f"PHI node {n.node_id} ({n.name!r}) needs exactly one of "
                    "init_value / init_param"
                )
            if n.is_io() and n.sensor_id is None:
                raise CgraError(f"IO node {n.node_id} lacks a sensor id")
        # Kahn's algorithm over forward edges.
        order = list(self.topological_order())
        if len(order) != len(self.nodes):
            cycle = self._find_forward_cycle({n.node_id for n in order})
            members = " -> ".join(
                f"%{nid} ({self.nodes[nid].op.value}"
                + (f" {self.nodes[nid].name!r}" if self.nodes[nid].name else "")
                + ")"
                for nid in cycle
            )
            raise CgraError(
                f"forward dataflow graph has a cycle through nodes: {members} "
                f"({len(order)}/{len(self.nodes)} nodes sorted)"
            )

    def _find_forward_cycle(self, sorted_ids: set[int]) -> list[int]:
        """One concrete cycle among the nodes Kahn's algorithm left behind.

        Walks operand edges inside the unsorted remainder until a node
        repeats; the returned list is the cycle in dependence order,
        closed (first id appears again conceptually via the last edge).
        """
        remaining = set(self.nodes) - sorted_ids
        start = min(remaining)
        path: list[int] = []
        seen: dict[int, int] = {}
        nid = start
        while nid not in seen:
            seen[nid] = len(path)
            path.append(nid)
            nid = next(o for o in self.nodes[nid].operands if o in remaining)
        return path[seen[nid]:]

    def topological_order(self) -> Iterator[DFGNode]:
        """Yield nodes in a forward-dataflow topological order.

        PHI back edges are ignored (they cross iterations).  Stops early
        if a cycle exists; :meth:`validate` turns that into an error.
        """
        indeg = {nid: len(n.operands) for nid, n in self.nodes.items()}
        ready = sorted(nid for nid, d in indeg.items() if d == 0)
        consumers = self.consumers()
        from collections import deque

        queue = deque(ready)
        while queue:
            nid = queue.popleft()
            yield self.nodes[nid]
            for c in consumers[nid]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    queue.append(c)

    def critical_path_length(self, latencies) -> int:
        """Length of the longest latency-weighted path through the body.

        A lower bound on any schedule's makespan — used by the scheduler's
        priority function and reported by E6.
        """
        dist: dict[int, int] = {}
        for n in self.topological_order():
            start = max((dist[o] for o in n.operands), default=0)
            dist[n.node_id] = start + latencies.of(n.op)
        return max(dist.values(), default=0)

    def dump(self) -> str:
        """Readable multi-line listing of the graph (debug aid)."""
        lines = [f"; dataflow graph {self.name!r}: {len(self.nodes)} nodes"]
        for n in self.topological_order():
            ops = ", ".join(f"%{o}" for o in n.operands)
            extra = ""
            if n.op is Op.CONST:
                extra = f" value={n.value}"
            if n.op is Op.PARAM:
                extra = f" param={n.name}"
            if n.op is Op.PHI:
                init = n.init_param if n.init_param is not None else n.init_value
                extra = f" init={init} back=%{n.back_edge}"
            if n.sensor_id is not None:
                extra += f" io_id={n.sensor_id}"
            label = f"  ; {n.name}" if n.name and n.op not in (Op.PARAM,) else ""
            lines.append(f"%{n.node_id} = {n.op.value}({ops}){extra}{label}")
        return "\n".join(lines)
