"""Context-memory image generation.

"Output of the scheduler are the contents for all context memories, which
can be inserted into the final FPGA bitstream without requiring a new
synthesis.  This allows very fast iterations of the model, as changes to
the C implementation are available on the experimental setup in seconds."

A :class:`ContextImage` is the per-PE program: for every issue tick, the
operation, its operand sources (which PE produced each input and at what
tick it arrives) and IO ids.  The executor runs off these images — not
off the dataflow graph — mirroring the hardware flow, and the images are
JSON-serialisable so a "bitstream insert" round-trip can be tested.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.cgra.dfg import DataflowGraph
from repro.cgra.ops import Op
from repro.cgra.scheduler import Schedule
from repro.errors import CgraError

__all__ = ["ContextEntry", "ContextImage", "build_context_images", "images_to_json", "images_from_json"]


@dataclass(frozen=True)
class ContextEntry:
    """One slot of a PE's context memory."""

    tick: int
    op: str
    node_id: int
    #: Register ids (node ids) of the operands, in order.
    operands: tuple[int, ...]
    #: Sensor/actuator id for IO operations.
    io_id: int | None = None
    #: Constant value for preloaded constants (CONST pseudo-entries).
    value: float | None = None


@dataclass
class ContextImage:
    """Context memory of one PE."""

    pe: tuple[int, int]
    entries: list[ContextEntry] = field(default_factory=list)

    def sorted_entries(self) -> list[ContextEntry]:
        """Entries by issue tick."""
        return sorted(self.entries, key=lambda e: e.tick)


def build_context_images(schedule: Schedule) -> dict[tuple[int, int], ContextImage]:
    """Convert a schedule into per-PE context images.

    Zero-time values (constants, parameters, PHIs) are not context
    entries — they live in register/context initialisation, which the
    executor receives separately via the graph.
    """
    images: dict[tuple[int, int], ContextImage] = {
        pe: ContextImage(pe=pe) for pe in schedule.fabric.pes
    }
    for placed in schedule.ops.values():
        node = schedule.graph.node(placed.node_id)
        images[placed.pe].entries.append(
            ContextEntry(
                tick=placed.start,
                op=node.op.value,
                node_id=node.node_id,
                operands=tuple(node.operands),
                io_id=node.sensor_id,
            )
        )
    for image in images.values():
        image.entries.sort(key=lambda e: e.tick)
    return images


def images_to_json(images: dict[tuple[int, int], ContextImage]) -> str:
    """Serialise context images (the "bitstream insert" payload)."""
    payload = {
        f"{pe[0]},{pe[1]}": [asdict(e) for e in img.sorted_entries()]
        for pe, img in images.items()
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def images_from_json(text: str) -> dict[tuple[int, int], ContextImage]:
    """Inverse of :func:`images_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CgraError(f"malformed context image JSON: {exc}") from exc
    images: dict[tuple[int, int], ContextImage] = {}
    for key, entries in payload.items():
        r, c = (int(x) for x in key.split(","))
        img = ContextImage(pe=(r, c))
        for e in entries:
            img.entries.append(
                ContextEntry(
                    tick=int(e["tick"]),
                    op=str(e["op"]),
                    node_id=int(e["node_id"]),
                    operands=tuple(int(o) for o in e["operands"]),
                    io_id=e["io_id"],
                    value=e["value"],
                )
            )
        images[(r, c)] = img
    return images
