"""Two-sample linear interpolation helpers.

The CGRA model program fetches two adjacent ring-buffer samples and
interpolates linearly "to increase the accuracy" because the requested
arrival time "is rarely ever an integer multiple of the period length of
the sampling frequency" (paper Section IV-B).  These helpers implement
exactly that arithmetic and are shared by the Python model, the ring
buffer and the CGRA executor's SensorAccess module, so all paths compute
identical values.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError

__all__ = ["linear_fetch_pair", "linear_fetch"]


def linear_fetch_pair(a: float, b: float, frac: float) -> float:
    """Interpolate between two adjacent samples: a·(1−frac) + b·frac.

    ``frac`` must lie in [0, 1); the callers guarantee this by splitting a
    fractional address into integer base and remainder.
    """
    if not 0.0 <= frac < 1.0 + 1e-12:
        raise SignalError(f"interpolation fraction {frac} outside [0, 1)")
    return float(a * (1.0 - frac) + b * frac)


def linear_fetch(samples: np.ndarray, address) -> np.ndarray | float:
    """Interpolated fetch from a plain array at fractional index/indices.

    Vectorised counterpart used by analysis code; the hardware path goes
    through :meth:`repro.signal.ringbuffer.RingBuffer.fetch_interpolated`.
    """
    arr = np.asarray(samples, dtype=float)
    pos = np.asarray(address, dtype=float)
    if np.any(pos < 0.0) or np.any(pos > arr.size - 1):
        raise SignalError("address outside sample array")
    base = np.floor(pos).astype(int)
    base = np.minimum(base, arr.size - 2)
    frac = pos - base
    val = arr[base] * (1.0 - frac) + arr[base + 1] * frac
    return float(val) if np.isscalar(address) else val
