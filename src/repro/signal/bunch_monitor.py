"""Bunch-shape monitor DSP: pulse detection and width measurement.

The counterpart of the parametric pulse generator: given a pickup
waveform, find the bunch pulses and estimate, per pulse, the centre time
(centroid), the RMS width and the peak — the observables a bunch-shape
monitor in a real LLRF rack extracts.  Feeding the quadrupole-mode
studies (E10/E13): a σ_Δt oscillation in the model shows up as a width
oscillation here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.signal.waveform import Waveform

__all__ = ["PulseMeasurement", "detect_pulses"]

_VAR_RATIO_CACHE: dict[float, float] = {}


def _truncation_variance_ratio(k: float) -> float:
    """var_measured/σ² for a unit Gaussian measured above threshold k
    with the threshold baseline subtracted (exact, cached numeric
    integral — a pure function of the threshold fraction)."""
    cached = _VAR_RATIO_CACHE.get(k)
    if cached is not None:
        return cached
    x_max = np.sqrt(-2.0 * np.log(k))
    x = np.linspace(-x_max, x_max, 4001)
    w = np.exp(-0.5 * x * x) - k
    ratio = float(np.sum(w * x * x) / np.sum(w))
    _VAR_RATIO_CACHE[k] = ratio
    return ratio


def _expand_region(
    samples: np.ndarray, start: int, stop: int, local_threshold: float
) -> tuple[int, int]:
    """Widen ``[start, stop)`` to the local threshold's crossing points.

    Vectorised equivalent of walking outward sample by sample: the
    sorted indices at-or-below the local threshold bracket every
    above-threshold run, so ``searchsorted`` lands on the nearest
    crossing to each side directly.
    """
    below = np.flatnonzero(samples <= local_threshold)
    pos = np.searchsorted(below, start)
    lo = int(below[pos - 1]) + 1 if pos > 0 else 0
    pos = np.searchsorted(below, stop)
    hi = int(below[pos]) if pos < below.size else samples.size
    return lo, hi


def _expand_region_scalar(
    samples: np.ndarray, start: int, stop: int, local_threshold: float
) -> tuple[int, int]:
    """Reference sample-by-sample walk; the parity tests pin
    :func:`_expand_region` to it bit-for-bit."""
    lo, hi = start, stop
    while lo > 0 and samples[lo - 1] > local_threshold:
        lo -= 1
    while hi < samples.size and samples[hi] > local_threshold:
        hi += 1
    return lo, hi


@dataclass(frozen=True)
class PulseMeasurement:
    """One detected pulse's shape parameters."""

    #: Centroid time of the pulse, seconds.
    centre: float
    #: RMS width (second central moment), seconds — equals σ for a
    #: Gaussian pulse.
    rms_width: float
    #: Peak sample value.
    peak: float
    #: Integral (charge proxy): Σ samples / sample_rate.
    area: float


def detect_pulses(
    waveform: Waveform,
    threshold_fraction: float = 0.2,
    min_separation: float | None = None,
) -> list[PulseMeasurement]:
    """Find pulses above a relative threshold and measure their moments.

    Parameters
    ----------
    waveform:
        The pickup signal (non-negative pulses on a ~zero baseline).
    threshold_fraction:
        Detection threshold as a fraction of the global peak.
    min_separation:
        Minimum centre-to-centre spacing in seconds; regions closer than
        this merge into one pulse.  Defaults to 8 samples.

    Notes
    -----
    Moments are computed over each contiguous above-threshold region
    with the threshold baseline subtracted, which debiases the RMS width
    estimate of truncated Gaussians well enough for monitor purposes
    (≲ 5 % for 4σ windows).
    """
    samples = waveform.samples
    if samples.size == 0:
        return []
    if not 0.0 < threshold_fraction < 1.0:
        raise SignalError("threshold_fraction must be in (0, 1)")
    peak = samples.max()
    if peak <= 0.0:
        return []
    threshold = threshold_fraction * peak
    above = samples > threshold
    if min_separation is None:
        min_separation = 8.0 / waveform.sample_rate

    # Contiguous regions above threshold.
    edges = np.diff(above.astype(np.int8))
    starts = list(np.nonzero(edges == 1)[0] + 1)
    stops = list(np.nonzero(edges == -1)[0] + 1)
    if above[0]:
        starts.insert(0, 0)
    if above[-1]:
        stops.append(samples.size)

    t = waveform.time_axis()
    results: list[PulseMeasurement] = []
    for start, stop in zip(starts, stops):
        # Second pass per pulse: pulses vary in height (parametric
        # playback), so re-threshold relative to the *local* peak — the
        # truncation debias is only correct for a threshold expressed as
        # a fraction of the measured pulse's own amplitude.
        local_peak = float(samples[start:stop].max())
        local_threshold = threshold_fraction * local_peak
        lo, hi = _expand_region(samples, start, stop, local_threshold)
        seg = samples[lo:hi] - local_threshold
        seg[seg < 0.0] = 0.0
        seg_t = t[lo:hi]
        mass = seg.sum()
        if mass <= 0.0:
            continue
        centre = float(np.sum(seg_t * seg) / mass)
        var = float(np.sum(seg * (seg_t - centre) ** 2) / mass)
        rms = float(np.sqrt(max(var, 0.0) / _truncation_variance_ratio(threshold_fraction)))
        start, stop = lo, hi  # report peak/area over the refined window
        if results and centre - results[-1].centre < min_separation:
            continue
        results.append(
            PulseMeasurement(
                centre=centre,
                rms_width=rms,
                peak=float(samples[start:stop].max()),
                area=float(samples[start:stop].sum() / waveform.sample_rate),
            )
        )
    return results
