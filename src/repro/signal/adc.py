"""Analogue-to-digital converter model (FMC151 ADC channel).

The paper's FMC151 daughter card provides a two-channel **14-bit** ADC
running at **250 MHz** with input amplitudes limited to **2 V peak-to-
peak**.  This model reproduces the conversion bit-exactly: mid-tread
uniform quantisation over ±1 V, hard clipping at the rails, and optional
additive noise plus aperture jitter for non-ideal studies.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SignalError
from repro.obs import get_registry
from repro.obs._state import STATE as _OBS
from repro.signal.waveform import Waveform

__all__ = ["ADC"]

_CLIPS = get_registry().counter(
    "signal_adc_clips_total", "ADC samples clipped at the input rails"
)
_SAMPLES = get_registry().counter(
    "signal_adc_samples_total", "samples converted by the ADC models"
)


class ADC:
    """Bit-accurate ADC channel.

    Parameters
    ----------
    bits:
        Resolution (14 for the FMC151 ADC).
    vpp:
        Full-scale peak-to-peak input range in volts (2.0 in the bench).
    sample_rate:
        Sample clock in Hz (250 MHz in the bench).
    noise_rms:
        RMS of additive Gaussian input-referred noise in volts (0 = ideal).
    aperture_jitter_rms:
        RMS sampling-instant jitter in seconds (0 = ideal).  Only used by
        :meth:`sample_function`, where the true signal can be re-evaluated
        at the jittered instants.
    rng:
        Random generator for the noise models; required when either noise
        parameter is non-zero.
    """

    def __init__(
        self,
        bits: int = 14,
        vpp: float = 2.0,
        sample_rate: float = 250e6,
        noise_rms: float = 0.0,
        aperture_jitter_rms: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if bits < 1 or bits > 32:
            raise SignalError(f"bits must be in [1, 32], got {bits}")
        if vpp <= 0.0:
            raise SignalError("vpp must be positive")
        if sample_rate <= 0.0:
            raise SignalError("sample_rate must be positive")
        if noise_rms < 0.0 or aperture_jitter_rms < 0.0:
            raise SignalError("noise parameters must be non-negative")
        if (noise_rms > 0.0 or aperture_jitter_rms > 0.0) and rng is None:
            raise SignalError("rng is required when noise or jitter is enabled")
        self.bits = int(bits)
        self.vpp = float(vpp)
        self.sample_rate = float(sample_rate)
        self.noise_rms = float(noise_rms)
        self.aperture_jitter_rms = float(aperture_jitter_rms)
        self._rng = rng
        # Cached conversion constants: convert() runs once per sensor
        # read on the HIL hot path, so the derived values are computed
        # once here instead of per call.
        self._lsb = self.vpp / (2**self.bits)
        self._code_min = -(2 ** (self.bits - 1))
        self._code_max = 2 ** (self.bits - 1) - 1

    @property
    def full_scale(self) -> float:
        """Positive rail in volts (vpp/2)."""
        return 0.5 * self.vpp

    @property
    def lsb(self) -> float:
        """Voltage step of one code."""
        return self._lsb

    @property
    def code_min(self) -> int:
        """Most negative output code (two's complement)."""
        return self._code_min

    @property
    def code_max(self) -> int:
        """Most positive output code."""
        return self._code_max

    def convert(self, volts) -> np.ndarray:
        """Convert voltages to integer codes (mid-tread, clipped at rails)."""
        v = np.asarray(volts, dtype=float)
        if self.noise_rms > 0.0:
            v = v + self._rng.normal(0.0, self.noise_rms, v.shape)
        # rint == round(decimals=0) bit-for-bit on floats (both are
        # round-half-even), without the decimals dispatch; the nested
        # minimum/maximum is np.clip minus its per-call broadcasting setup.
        codes = np.rint(v / self._lsb).astype(np.int64)
        if _OBS.enabled:
            _SAMPLES.inc(codes.size)
            clipped = int(
                np.count_nonzero((codes < self._code_min) | (codes > self._code_max))
            )
            if clipped:
                _CLIPS.inc(clipped)
        return np.minimum(np.maximum(codes, self._code_min), self._code_max)

    def codes_to_volts(self, codes) -> np.ndarray:
        """Reconstruct voltages from codes (the value the FPGA works with)."""
        return np.asarray(codes, dtype=float) * self._lsb

    def quantize(self, volts) -> np.ndarray:
        """Convert to codes and back: the quantised voltage seen inside
        the FPGA.  This is the transfer function applied at every model
        input of the HIL bench."""
        return self.codes_to_volts(self.convert(volts))

    def apply_stuck_bit(self, codes, bit: int) -> np.ndarray:
        """Force ``bit`` of the two's-complement output word to 1.

        The fault model of :mod:`repro.faults`: a defective output
        driver pins one bit of the converter word high.  Acts on the
        raw ``bits``-wide word, so sticking the top bit flips the sign
        of positive codes — exactly what the hardware fault does.
        """
        if not 0 <= bit < self.bits:
            raise SignalError(
                f"stuck bit {bit} out of range for a {self.bits}-bit ADC"
            )
        return self.apply_stuck_mask(codes, 1 << bit)

    def apply_stuck_mask(self, codes, or_mask) -> np.ndarray:
        """Vector form of :meth:`apply_stuck_bit` with per-element OR
        masks (mask 0 is an exact identity — unfaulted batch lanes pass
        through untouched)."""
        word_mask = (1 << self.bits) - 1
        word = (np.asarray(codes, dtype=np.int64) & word_mask) | or_mask
        return word - ((word >> (self.bits - 1)) & 1) * (1 << self.bits)

    def apply_stuck_mask_scalar(self, code: int, or_mask: int) -> int:
        """Scalar fast path of :meth:`apply_stuck_mask` (identical
        transfer)."""
        word = (code & ((1 << self.bits) - 1)) | or_mask
        return word - ((word >> (self.bits - 1)) & 1) * (1 << self.bits)

    def convert_scalar(self, volts: float) -> int:
        """Scalar fast path of :meth:`convert` — identical transfer
        function without the ndarray round-trip (Python ``round`` and
        ``np.round`` are both round-half-even)."""
        v = float(volts)
        if self.noise_rms > 0.0:
            v += self._rng.normal(0.0, self.noise_rms)
        code = round(v / self.lsb)
        lo, hi = self.code_min, self.code_max
        if _OBS.enabled:
            _SAMPLES.inc()
            if code < lo or code > hi:
                _CLIPS.inc()
        if code < lo:
            return lo
        if code > hi:
            return hi
        return code

    def quantize_scalar(self, volts: float) -> float:
        """Scalar fast path of :meth:`quantize` (identical transfer)."""
        return self.convert_scalar(volts) * self.lsb

    def sample_waveform(self, waveform: Waveform) -> Waveform:
        """Quantise an already-sampled waveform at this ADC's resolution.

        The waveform must be at the ADC sample rate (the bench clocks the
        DDS outputs and the ADC from the same 250 MHz system clock).
        """
        if abs(waveform.sample_rate - self.sample_rate) > 1e-6 * self.sample_rate:
            raise SignalError(
                f"waveform rate {waveform.sample_rate} != ADC rate {self.sample_rate}"
            )
        return Waveform(self.quantize(waveform.samples), self.sample_rate, waveform.t0)

    def sample_function(self, fn: Callable[[np.ndarray], np.ndarray], t0: float, n_samples: int) -> Waveform:
        """Sample an analytic signal ``fn(t)``: aperture jitter applies here.

        Returns the quantised waveform on the nominal time grid (codes are
        taken at jittered instants, reproducing jitter-induced amplitude
        noise on fast signals).
        """
        if n_samples < 0:
            raise SignalError("n_samples must be non-negative")
        t = t0 + np.arange(n_samples) / self.sample_rate
        t_eff = t
        if self.aperture_jitter_rms > 0.0:
            t_eff = t + self._rng.normal(0.0, self.aperture_jitter_rms, n_samples)
        return Waveform(self.quantize(np.asarray(fn(t_eff), dtype=float)), self.sample_rate, t0)
