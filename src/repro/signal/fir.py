"""FIR filter design and the beam-phase control filter.

The closed-loop control system of the paper "uses a Finite Impulse
Response (FIR) filter.  The parameters of the closed-loop control were
set to f_pass = 1.4 kHz, gain = −5 and recursion factor = 0.99, which are
the optimal parameters according to [8]" (Klingbeil et al., *A Digital
Beam-Phase Control System for Heavy-Ion Synchrotrons*, IEEE TNS 2007).

:class:`PhaseControlFilter` implements that controller with exactly those
three parameters:

* a first-difference FIR stage ``x[n] − x[n−1]`` that blocks the constant
  phase offset (the dead-time offsets of Fig. 5 must not be amplified)
  and provides the ≈ +90° phase lead that converts phase feedback into
  velocity (damping) feedback at frequencies well below the control rate;
* a single-pole recursive extension with pole ``z = recursion_factor``
  that integrates the difference back down above the corner frequency —
  together they form a band-pass centred near
  ``f_c ≈ (1 − r)·f_ctrl / 2π`` (with r = 0.99 at the 800 kHz revolution
  rate this is ≈ 1.27 kHz, right at the synchrotron frequency, which is
  why 0.99 is the documented optimum);
* the loop gain (−5).

The filter is normalised to unit band-centre magnitude at ``f_pass``, so
``gain`` is the actual loop gain at the synchrotron frequency.  Generic
windowed-sinc designs are provided for spectral analysis and tests.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

try:  # SciPy is optional: process() falls back to the scalar recurrence.
    from scipy.signal import lfilter as _lfilter
except ImportError:  # pragma: no cover - environment-dependent
    _lfilter = None

from repro.constants import TWO_PI
from repro.errors import SignalError

__all__ = [
    "design_lowpass_fir",
    "design_bandpass_fir",
    "fir_frequency_response",
    "PhaseControlFilter",
]


def design_lowpass_fir(cutoff: float, sample_rate: float, n_taps: int) -> np.ndarray:
    """Windowed-sinc (Hamming) low-pass FIR with DC gain 1."""
    if not 0.0 < cutoff < 0.5 * sample_rate:
        raise SignalError(f"cutoff {cutoff} outside (0, Nyquist)")
    if n_taps < 3 or n_taps % 2 == 0:
        raise SignalError("n_taps must be an odd integer >= 3")
    m = n_taps - 1
    n = np.arange(n_taps) - m / 2
    fc = cutoff / sample_rate
    h = np.sinc(2.0 * fc * n) * 2.0 * fc
    h *= np.hamming(n_taps)
    return h / h.sum()


def design_bandpass_fir(
    f_low: float, f_high: float, sample_rate: float, n_taps: int
) -> np.ndarray:
    """Windowed-sinc band-pass FIR (difference of two low-passes)."""
    if not 0.0 < f_low < f_high < 0.5 * sample_rate:
        raise SignalError("need 0 < f_low < f_high < Nyquist")
    hp_hi = design_lowpass_fir(f_high, sample_rate, n_taps)
    hp_lo = design_lowpass_fir(f_low, sample_rate, n_taps)
    return hp_hi - hp_lo


def fir_frequency_response(taps: np.ndarray, sample_rate: float, freqs) -> np.ndarray:
    """Complex frequency response H(f) of an FIR filter at given freqs."""
    taps = np.asarray(taps, dtype=float)
    f = np.atleast_1d(np.asarray(freqs, dtype=float))
    z = np.exp(-1j * TWO_PI * np.outer(f, np.arange(taps.size)) / sample_rate)
    return z @ taps


class PhaseControlFilter:
    """The beam-phase control loop filter (difference + leaky integrator).

    Transfer function::

        H(z) = gain * C * (1 - z^-1) / (1 - r z^-1)

    where ``r`` is the recursion factor and ``C`` normalises
    ``|H(exp(j2πf_pass/f_ctrl))| = |gain|``.

    Parameters
    ----------
    f_pass:
        Passband (normalisation) frequency in Hz — 1.4 kHz in the paper.
    gain:
        Loop gain at ``f_pass`` — −5 in the paper.  The sign convention is
        that the filter output is *added* to the gap phase, so a negative
        gain with a +90°-leading filter damps the oscillation.
    recursion_factor:
        Pole location r ∈ [0, 1) — 0.99 in the paper.
    sample_rate:
        Rate at which the phase-difference samples arrive (the control
        loop of the bench runs once per revolution).
    """

    def __init__(
        self,
        f_pass: float = 1.4e3,
        gain: float = -5.0,
        recursion_factor: float = 0.99,
        sample_rate: float = 800e3,
    ) -> None:
        if not 0.0 <= recursion_factor < 1.0:
            raise SignalError(f"recursion_factor must be in [0, 1), got {recursion_factor}")
        if sample_rate <= 0.0:
            raise SignalError("sample_rate must be positive")
        if not 0.0 < f_pass < 0.5 * sample_rate:
            raise SignalError(f"f_pass {f_pass} outside (0, Nyquist)")
        self.f_pass = float(f_pass)
        self.gain = float(gain)
        self.recursion_factor = float(recursion_factor)
        self.sample_rate = float(sample_rate)
        # Normalise so |H(f_pass)| == |gain|.
        w = TWO_PI * f_pass / sample_rate
        z = cmath.exp(1j * w)
        raw = abs((1.0 - 1.0 / z) / (1.0 - recursion_factor / z))
        if raw == 0.0:
            raise SignalError("degenerate normalisation at f_pass")
        self._c = 1.0 / raw
        self._x_prev = 0.0
        self._y_prev = 0.0

    def reset(self) -> None:
        """Clear the filter state."""
        self._x_prev = 0.0
        self._y_prev = 0.0

    def step(self, x: float) -> float:
        """Process one phase-difference sample; returns the correction."""
        y = self.recursion_factor * self._y_prev + self.gain * self._c * (x - self._x_prev)
        self._x_prev = x
        self._y_prev = y
        return y

    def process(self, x: np.ndarray) -> np.ndarray:
        """Filter a whole trace (stateful, continues from previous calls).

        The whole block runs through one ``scipy.signal.lfilter`` call
        (bit-identical to the scalar recurrence: the single-pole IIR in
        direct form II transposed performs the exact same float64
        operations per sample); without SciPy the scalar loop is used.
        """
        x = np.asarray(x, dtype=float).ravel()
        if x.size == 0:
            return np.empty(0)
        xp, yp = self._x_prev, self._y_prev
        r, g, c = self.recursion_factor, self.gain, self._c
        if _lfilter is not None:
            u = g * c * (x - np.concatenate(([xp], x[:-1])))
            out, _ = _lfilter([1.0], [1.0, -r], u, zi=[r * yp])
            self._x_prev = float(x[-1])
            self._y_prev = float(out[-1])
            return out
        out = np.empty_like(x)
        for i in range(x.size):
            yp = r * yp + g * c * (x[i] - xp)
            xp = x[i]
            out[i] = yp
        self._x_prev, self._y_prev = xp, yp
        return out

    def frequency_response(self, freqs) -> np.ndarray:
        """Complex response H(f) including gain and normalisation."""
        f = np.atleast_1d(np.asarray(freqs, dtype=float))
        z = np.exp(1j * TWO_PI * f / self.sample_rate)
        return self.gain * self._c * (1.0 - 1.0 / z) / (1.0 - self.recursion_factor / z)

    def corner_frequency(self) -> float:
        """Approximate band centre (1 − r)·f_ctrl/(2π), in Hz."""
        return (1.0 - self.recursion_factor) * self.sample_rate / TWO_PI
