"""Parametric beam-pulse generator (paper Section VI outlook).

"Also, it allows us to replace the synthetic Gauss pulse by a parametric
version that adapts to the energy/phase distribution of the bunch."

:class:`ParametricPulseGenerator` generalises
:class:`~repro.signal.gauss_pulse.GaussPulseGenerator`: every trigger
carries its own width and amplitude, so the played-back pickup pulse can
track the simulated bunch's instantaneous length (σ_Δt) and intensity.
With constant bunch charge the peak scales as 1/σ (the integral of the
pickup pulse is the charge), which :meth:`schedule_matched` implements.

Together with :mod:`repro.signal.bunch_monitor` this closes the loop on
the quadrupole observable: a bunch-length oscillation in the model
becomes a pulse-width oscillation in the emulated pickup signal, which a
monitor DSP can measure — none of which the fixed-shape Gauss pulse of
the paper's current bench can represent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.signal.waveform import Waveform

__all__ = ["ParametricPulseGenerator"]


@dataclass(frozen=True)
class _Pulse:
    time: float
    sigma: float
    amplitude: float


class ParametricPulseGenerator:
    """Plays back Gaussian pulses with per-trigger width and amplitude.

    Parameters
    ----------
    sample_rate:
        DAC sample rate in Hz.
    n_sigmas:
        Rendered half-width in units of each pulse's own sigma.
    reference_sigma:
        Width corresponding to unit amplitude scaling in
        :meth:`schedule_matched` (the design bunch length).
    reference_amplitude:
        Peak amplitude of a pulse at the reference width.
    """

    def __init__(
        self,
        sample_rate: float = 250e6,
        n_sigmas: float = 4.0,
        reference_sigma: float = 25e-9,
        reference_amplitude: float = 0.8,
    ) -> None:
        if sample_rate <= 0.0:
            raise SignalError("sample_rate must be positive")
        if reference_sigma <= 0.0:
            raise SignalError("reference_sigma must be positive")
        self.sample_rate = float(sample_rate)
        self.n_sigmas = float(n_sigmas)
        self.reference_sigma = float(reference_sigma)
        self.reference_amplitude = float(reference_amplitude)
        self._pending: list[_Pulse] = []
        self._rendered_until = 0.0

    def schedule(self, trigger_time: float, sigma: float, amplitude: float) -> None:
        """Schedule one pulse with explicit shape parameters."""
        if sigma <= 0.0:
            raise SignalError("sigma must be positive")
        if trigger_time + self.n_sigmas * sigma < self._rendered_until:
            raise SignalError(
                f"trigger at {trigger_time} s lies before the render cursor"
            )
        self._pending.append(_Pulse(float(trigger_time), float(sigma), float(amplitude)))

    def schedule_matched(self, trigger_time: float, sigma: float) -> None:
        """Schedule a constant-charge pulse: peak ∝ reference_σ/σ.

        A longer bunch produces a lower, wider pickup pulse with the
        same integral — the physically correct adaptation.
        """
        amplitude = self.reference_amplitude * self.reference_sigma / sigma
        self.schedule(trigger_time, sigma, amplitude)

    @property
    def pending_triggers(self) -> list[float]:
        """Centre times of pulses not yet fully rendered (sorted)."""
        return sorted(p.time for p in self._pending)

    def render(self, t0: float, n_samples: int) -> Waveform:
        """Render the output block [t0, t0 + n/fs); blocks must be ordered."""
        if n_samples < 0:
            raise SignalError("n_samples must be non-negative")
        if t0 < self._rendered_until - 0.5 / self.sample_rate:
            raise SignalError(
                f"blocks must be rendered in order: t0={t0} < cursor={self._rendered_until}"
            )
        out = np.zeros(n_samples)
        t_end = t0 + n_samples / self.sample_rate
        keep: list[_Pulse] = []
        for pulse in self._pending:
            half = self.n_sigmas * pulse.sigma
            if pulse.time + half < t0:
                continue
            if pulse.time - half < t_end:
                i0 = max(0, int(math.floor((pulse.time - half - t0) * self.sample_rate)))
                i1 = min(
                    n_samples,
                    int(math.ceil((pulse.time + half - t0) * self.sample_rate)) + 1,
                )
                if i1 > i0:
                    t = t0 + np.arange(i0, i1) / self.sample_rate
                    shape = pulse.amplitude * np.exp(
                        -0.5 * ((t - pulse.time) / pulse.sigma) ** 2
                    )
                    shape[np.abs(t - pulse.time) > half] = 0.0
                    out[i0:i1] += shape
            if pulse.time + half >= t_end:
                keep.append(pulse)
        self._pending = keep
        self._rendered_until = t_end
        return Waveform(out, self.sample_rate, t0)
