"""Zero-crossing and period-length detectors (paper Section III-B).

"One ADC channel provides the reference voltage input, which is also
connected to a zero crossing detector.  This module both measures the
frequency and time of the last positive zero crossing of the sinusoidal
input voltage.  A period length detector determines the frequency of the
reference signal.  The measured frequency is averaged over the past four
periods to reduce jitter."

Both detectors are streaming: they consume ADC sample blocks and maintain
state across blocks, so the HIL framework can feed them one reference
period at a time.  Crossing times are resolved to sub-sample precision by
linear interpolation between the two straddling samples — the same
resolution the hardware edge detector achieves with its sample-domain
counter plus the model's interpolating fetch.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import SignalError

__all__ = ["ZeroCrossingDetector", "PeriodLengthDetector"]


class ZeroCrossingDetector:
    """Detects positive-going zero crossings of a streamed signal.

    Crossings are reported as fractional *global sample indices* (index of
    the last sample below zero plus the interpolated fraction).  Dividing
    by the sample rate yields the crossing time.
    """

    def __init__(self, hysteresis: float = 0.0) -> None:
        if hysteresis < 0.0:
            raise SignalError("hysteresis must be non-negative")
        self.hysteresis = float(hysteresis)
        self._last_sample: float | None = None
        self._armed = True
        self._consumed = 0
        #: Fractional global index of the most recent positive crossing.
        self.last_crossing: float | None = None

    def feed(self, samples) -> np.ndarray:
        """Consume a block; return fractional indices of new crossings.

        With hysteresis, the detector is *armed* when the signal has been
        below ``-hysteresis`` since the previous crossing; a rising pass
        through zero then fires and disarms until the signal dips below
        the threshold again — so noise riding on the zero line cannot
        produce double triggers.
        """
        s = np.asarray(samples, dtype=float).ravel()
        if s.size == 0:
            return np.empty(0)
        prev = self._last_sample
        full = s if prev is None else np.concatenate(([prev], s))
        # offset of full[i] in global indices:
        base = self._consumed - (0 if prev is None else 1)
        below = full[:-1]
        above = full[1:]
        cand = np.nonzero((below < 0.0) & (above >= 0.0))[0]
        if self.hysteresis == 0.0:
            fired = cand
        else:
            # Arming events are where the signal dips below -hysteresis;
            # a candidate fires if an arming event at index <= candidate
            # has not been consumed by an earlier firing (an arm at the
            # candidate's own index counts: the sequential detector arms
            # before it checks for the crossing).  Only the candidates
            # are walked in Python — arming is resolved with a single
            # searchsorted over the whole block.
            arm_idx = np.nonzero(below < -self.hysteresis)[0]
            arms_upto = np.searchsorted(arm_idx, cand, side="right")
            armed = self._armed
            consumed = 0
            last_fire = -1
            fired_list: list[int] = []
            for i, ac in zip(cand.tolist(), arms_upto.tolist()):
                if armed or ac > consumed:
                    fired_list.append(i)
                    armed = False
                    consumed = ac
                    last_fire = i
            if arm_idx.size and arm_idx[-1] > last_fire:
                armed = True
            self._armed = armed
            fired = np.asarray(fired_list, dtype=np.intp)
        if fired.size:
            a = full[fired]
            b = full[fired + 1]
            d = b - a
            with np.errstate(divide="ignore", invalid="ignore"):
                frac = np.where(d != 0.0, -a / d, 0.0)
            crossings = (base + fired) + frac
        else:
            crossings = np.empty(0)
        self._last_sample = float(s[-1])
        self._consumed += s.size
        if crossings.size:
            self.last_crossing = float(crossings[-1])
        return crossings

    @property
    def samples_consumed(self) -> int:
        """Total number of samples fed so far."""
        return self._consumed


class PeriodLengthDetector:
    """Measures the reference period, averaged over the last four periods.

    Wraps a :class:`ZeroCrossingDetector`; period lengths are the
    differences of consecutive positive-crossing indices.  As in the
    hardware, the detector reports the average of the **last four**
    periods ("the sensor applies a simple average filter by accumulating
    the last four period lengths measured") and is not ``ready`` until
    four full periods have been observed — the model program "waits for a
    valid measurement of four full sine waves" before initialising.
    """

    def __init__(self, sample_rate: float, average_over: int = 4) -> None:
        if sample_rate <= 0.0:
            raise SignalError("sample_rate must be positive")
        if average_over < 1:
            raise SignalError("average_over must be >= 1")
        self.sample_rate = float(sample_rate)
        self.average_over = int(average_over)
        self._zcd = ZeroCrossingDetector()
        self._periods: deque[float] = deque(maxlen=self.average_over)
        self._last_crossing: float | None = None

    def feed(self, samples) -> None:
        """Consume a block of reference-signal samples."""
        for crossing in self._zcd.feed(samples):
            if self._last_crossing is not None:
                period = crossing - self._last_crossing
                if period > 0.0:
                    self._periods.append(period)
            self._last_crossing = crossing

    @property
    def ready(self) -> bool:
        """True once four (``average_over``) periods have been measured."""
        return len(self._periods) == self.average_over

    @property
    def last_crossing_index(self) -> float:
        """Fractional global index of the latest positive zero crossing."""
        if self._last_crossing is None:
            raise SignalError("no zero crossing observed yet")
        return self._last_crossing

    @property
    def last_crossing_time(self) -> float:
        """Time of the latest positive zero crossing, in seconds."""
        return self.last_crossing_index / self.sample_rate

    def period_samples(self) -> float:
        """Averaged period length in samples (the sensor's native unit)."""
        if not self.ready:
            raise SignalError(
                f"period detector not ready: {len(self._periods)}/{self.average_over} periods"
            )
        return float(sum(self._periods) / len(self._periods))

    def period_seconds(self) -> float:
        """Averaged period length in seconds."""
        return self.period_samples() / self.sample_rate

    def frequency(self) -> float:
        """Averaged signal frequency in Hz."""
        return 1.0 / self.period_seconds()
