"""Arbitrary-waveform-generator phase drive and transport-delay models.

In the paper's test bench the phase jump of the gap signal "is created as
an analogue signal via an arbitrary waveform generator (AWG) and
converted into an optical stream via a Calibration Electronics (CEL)
module", then fed to the gap DDS.  "The phase jump was toggled every
twentieth of a second" with 8° jumps (the machine experiment used 10°).

:class:`PhaseJumpPattern` reproduces that drive as a deterministic
function of time; :class:`TransportDelay` models the CEL/cabling dead
time, which the paper identifies as the cause of the constant phase
offsets visible in Fig. 5.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import deg_to_rad
from repro.errors import SignalError

__all__ = ["PhaseJumpPattern", "TransportDelay"]


class PhaseJumpPattern:
    """Square-wave phase drive toggling between 0 and ``jump_deg``.

    Parameters
    ----------
    jump_deg:
        Jump amplitude in degrees of *gap-signal* phase (8° in the paper's
        bench run, 10° in the machine experiment).
    toggle_period:
        Time between toggles in seconds (0.05 s = "every twentieth of a
        second").
    start_time:
        Time of the first toggle; before it the drive is 0.
    """

    def __init__(self, jump_deg: float, toggle_period: float = 0.05, start_time: float = 0.0) -> None:
        if toggle_period <= 0.0:
            raise SignalError("toggle_period must be positive")
        self.jump_deg = float(jump_deg)
        self.toggle_period = float(toggle_period)
        self.start_time = float(start_time)

    def phase_deg_at(self, t) -> np.ndarray | float:
        """Drive value in degrees at time(s) ``t``."""
        if type(t) is float or type(t) is int:
            # Scalar fast path, bit-identical to the array form below:
            # math.floor and np.floor agree on every IEEE double, and
            # k >= 1 whenever t >= start_time so k % 2 is well-defined.
            if t < self.start_time:
                return 0.0
            k = math.floor((t - self.start_time) / self.toggle_period) + 1
            return self.jump_deg if k % 2 == 1 else 0.0
        t_arr = np.asarray(t, dtype=float)
        k = np.floor((t_arr - self.start_time) / self.toggle_period).astype(np.int64) + 1
        value = np.where(t_arr < self.start_time, 0.0, np.where(k % 2 == 1, self.jump_deg, 0.0))
        return float(value) if np.isscalar(t) else value

    def phase_rad_at(self, t) -> np.ndarray | float:
        """Drive value in radians at time(s) ``t``."""
        v = self.phase_deg_at(t)
        return deg_to_rad(v)

    def __call__(self, t):
        """Alias for :meth:`phase_rad_at` so the pattern plugs directly
        into :class:`repro.signal.dds.GroupDDS`'s ``gap_phase_drive``."""
        return self.phase_rad_at(t)

    def toggle_times(self, t_stop: float) -> np.ndarray:
        """All toggle instants in [start_time, t_stop)."""
        if t_stop <= self.start_time:
            return np.empty(0)
        n = int(math.ceil((t_stop - self.start_time) / self.toggle_period))
        times = self.start_time + np.arange(n) * self.toggle_period
        return times[times < t_stop]


class TransportDelay:
    """Pure dead time of a signal path (CEL optical link, cabling).

    The paper attributes the constant phase-difference offset between
    Fig. 5a and 5b to differing dead times; wrapping a phase drive in a
    :class:`TransportDelay` reproduces that offset.
    """

    def __init__(self, inner, delay: float) -> None:
        if delay < 0.0:
            raise SignalError("delay must be non-negative")
        self._inner = inner
        self.delay = float(delay)

    def __call__(self, t):
        t_arr = np.asarray(t, dtype=float)
        v = self._inner(t_arr - self.delay)
        return float(v) if np.isscalar(t) else v
