"""Gaussian beam-pulse generator (paper Section III-B).

The simulator's beam output "consist[s] of Gaussian distributed pulses":
"Using the previous positive zero crossing and the current frequency, the
correct time to trigger the next output Gauss pulse is stored in the
Gauss pulse generator module.  When the timer module triggers, a single,
precalculated, Gaussian distributed pulse is played back from sample
memory through the DAC output."

:func:`gaussian_pulse_table` precomputes the sample-memory contents;
:class:`GaussPulseGenerator` holds pending trigger times and renders the
output sample stream block by block.  Trigger times are continuous
(seconds); the renderer aligns the pulse to the *exact* trigger time by
evaluating the Gaussian at the sample grid offsets, reproducing the
hardware's timer resolution of one DAC clock with the precalculated
table's shape.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.errors import SignalError
from repro.signal.waveform import Waveform

__all__ = ["gaussian_pulse_table", "GaussPulseGenerator"]


def gaussian_pulse_table(
    sigma: float,
    sample_rate: float,
    amplitude: float = 1.0,
    n_sigmas: float = 4.0,
) -> np.ndarray:
    """Precompute the sample-memory image of one Gaussian pulse.

    Parameters
    ----------
    sigma:
        Pulse standard deviation in seconds (the bunch length of the
        emulated pickup pulse).
    sample_rate:
        Playback (DAC) sample rate in Hz.
    amplitude:
        Peak amplitude in volts.
    n_sigmas:
        Half-width of the table in units of sigma.
    """
    if sigma <= 0.0:
        raise SignalError("sigma must be positive")
    if sample_rate <= 0.0:
        raise SignalError("sample_rate must be positive")
    half = int(math.ceil(n_sigmas * sigma * sample_rate))
    n = np.arange(-half, half + 1, dtype=float)
    t = n / sample_rate
    return amplitude * np.exp(-0.5 * (t / sigma) ** 2)


class GaussPulseGenerator:
    """Plays back precalculated Gaussian pulses at scheduled times.

    Parameters
    ----------
    sigma:
        Pulse standard deviation in seconds.
    sample_rate:
        DAC sample rate in Hz.
    amplitude:
        Peak amplitude in volts; adjustable at runtime through the
        parameter interface (:meth:`set_amplitude`).
    n_sigmas:
        Rendered half-width in sigmas.
    """

    def __init__(
        self,
        sigma: float,
        sample_rate: float = 250e6,
        amplitude: float = 1.0,
        n_sigmas: float = 4.0,
    ) -> None:
        if sigma <= 0.0:
            raise SignalError("sigma must be positive")
        if sample_rate <= 0.0:
            raise SignalError("sample_rate must be positive")
        self.sigma = float(sigma)
        self.sample_rate = float(sample_rate)
        self.amplitude = float(amplitude)
        self.n_sigmas = float(n_sigmas)
        self._pending: list[float] = []
        self._rendered_until = 0.0

    def set_amplitude(self, amplitude: float) -> None:
        """Runtime amplitude scaling (SpartanMC parameter interface)."""
        self.amplitude = float(amplitude)

    def schedule(self, trigger_time: float) -> None:
        """Store the time at which the next pulse centre must appear.

        Triggers must be scheduled ahead of the render cursor; scheduling
        into already-rendered output raises, as the hardware timer cannot
        fire in the past either.
        """
        if trigger_time + self.n_sigmas * self.sigma < self._rendered_until:
            raise SignalError(
                f"trigger at {trigger_time} s lies entirely before the render "
                f"cursor {self._rendered_until} s"
            )
        heapq.heappush(self._pending, float(trigger_time))

    @property
    def pending_triggers(self) -> list[float]:
        """Scheduled pulse centres not yet fully rendered (sorted)."""
        return sorted(self._pending)

    def render(self, t0: float, n_samples: int) -> Waveform:
        """Render the output block [t0, t0 + n/fs).

        Blocks must be requested in order (a streaming DAC).  Pulses
        overlapping the block are summed in; triggers entirely in the past
        of the block are discarded once rendered.
        """
        if n_samples < 0:
            raise SignalError("n_samples must be non-negative")
        if t0 < self._rendered_until - 0.5 / self.sample_rate:
            raise SignalError(
                f"blocks must be rendered in order: t0={t0} < cursor={self._rendered_until}"
            )
        out = np.zeros(n_samples, dtype=float)
        t_end = t0 + n_samples / self.sample_rate
        half = self.n_sigmas * self.sigma
        keep: list[float] = []
        for trig in self._pending:
            if trig + half < t0:
                continue  # fully in the past: drop
            if trig - half < t_end:
                # Overlaps this block: add its samples.
                i0 = max(0, int(math.floor((trig - half - t0) * self.sample_rate)))
                i1 = min(n_samples, int(math.ceil((trig + half - t0) * self.sample_rate)) + 1)
                if i1 > i0:
                    t = t0 + np.arange(i0, i1) / self.sample_rate
                    pulse = self.amplitude * np.exp(
                        -0.5 * ((t - trig) / self.sigma) ** 2
                    )
                    # Hard-truncate at ±n_sigmas like the precalculated
                    # sample table, so block-boundary rounding cannot
                    # include samples a whole-window render would not.
                    pulse[np.abs(t - trig) > half] = 0.0
                    out[i0:i1] += pulse
            if trig + half >= t_end:
                keep.append(trig)  # still needed by future blocks
        self._pending = keep
        heapq.heapify(self._pending)
        self._rendered_until = t_end
        return Waveform(out, self.sample_rate, t0)
