"""Small display/analysis filters.

Fig. 5a's caption notes "an averaging filter with a width of 5 samples
has been applied" to the plotted phase-difference trace;
:func:`moving_average` reproduces that post-processing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError

__all__ = ["moving_average"]


def moving_average(x: np.ndarray, width: int = 5) -> np.ndarray:
    """Centred moving average with edge truncation.

    Each output sample is the mean of the ``width`` input samples centred
    on it; near the edges the window shrinks symmetrically, so the output
    has the same length as the input and no startup transient bias.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise SignalError("moving_average expects a 1-D array")
    if width < 1:
        raise SignalError("width must be >= 1")
    if width == 1 or x.size == 0:
        return x.copy()
    half = width // 2
    csum = np.cumsum(np.concatenate(([0.0], x)))
    idx = np.arange(x.size)
    lo = np.maximum(idx - half, 0)
    hi = np.minimum(idx + half + (width % 2), x.size)
    return (csum[hi] - csum[lo]) / (hi - lo)
