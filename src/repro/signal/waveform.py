"""Uniformly sampled waveform container.

A thin, explicit wrapper around a NumPy array plus its sample rate and
start time.  Used at the module boundaries of the signal chain so that
units and time axes cannot silently drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError

__all__ = ["Waveform"]


@dataclass
class Waveform:
    """A uniformly sampled real-valued signal.

    Attributes
    ----------
    samples:
        1-D float array of sample values (volts unless documented
        otherwise by the producer).
    sample_rate:
        Samples per second.
    t0:
        Time of ``samples[0]`` in seconds.
    """

    samples: np.ndarray
    sample_rate: float
    t0: float = 0.0

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=float)
        if self.samples.ndim != 1:
            raise SignalError(f"samples must be 1-D, got shape {self.samples.shape}")
        if self.sample_rate <= 0.0:
            raise SignalError(f"sample_rate must be positive, got {self.sample_rate}")

    def __len__(self) -> int:
        return self.samples.size

    @property
    def duration(self) -> float:
        """Span covered by the samples, in seconds."""
        return self.samples.size / self.sample_rate

    @property
    def dt(self) -> float:
        """Sample period in seconds."""
        return 1.0 / self.sample_rate

    def time_axis(self) -> np.ndarray:
        """Time of each sample, in seconds."""
        return self.t0 + np.arange(self.samples.size) / self.sample_rate

    def slice_time(self, t_start: float, t_stop: float) -> "Waveform":
        """Sub-waveform covering [t_start, t_stop) (inclusive of edges that
        land on samples).  Raises if the window is outside the waveform."""
        if t_stop <= t_start:
            raise SignalError("t_stop must exceed t_start")
        i0 = int(np.ceil((t_start - self.t0) * self.sample_rate - 1e-9))
        i1 = int(np.ceil((t_stop - self.t0) * self.sample_rate - 1e-9))
        if i0 < 0 or i1 > self.samples.size:
            raise SignalError(
                f"window [{t_start}, {t_stop}) outside waveform "
                f"[{self.t0}, {self.t0 + self.duration})"
            )
        return Waveform(self.samples[i0:i1], self.sample_rate, self.t0 + i0 * self.dt)

    def value_at(self, t) -> np.ndarray | float:
        """Linearly interpolated value at time(s) ``t`` (inside the span)."""
        t_arr = np.asarray(t, dtype=float)
        pos = (t_arr - self.t0) * self.sample_rate
        if np.any(pos < 0.0) or np.any(pos > self.samples.size - 1):
            raise SignalError("requested time outside waveform span")
        i = np.floor(pos).astype(int)
        i = np.minimum(i, self.samples.size - 2)
        frac = pos - i
        val = self.samples[i] * (1.0 - frac) + self.samples[i + 1] * frac
        return float(val) if np.isscalar(t) else val

    def concatenate(self, other: "Waveform") -> "Waveform":
        """Append a contiguous waveform produced by the same source."""
        if other.sample_rate != self.sample_rate:
            raise SignalError("sample rates differ")
        expected_t0 = self.t0 + self.duration
        if abs(other.t0 - expected_t0) > 0.5 * self.dt:
            raise SignalError(
                f"waveforms not contiguous: expected t0≈{expected_t0}, got {other.t0}"
            )
        return Waveform(
            np.concatenate([self.samples, other.samples]), self.sample_rate, self.t0
        )
