"""Digital-to-analogue converter model (FMC151 DAC channel).

The FMC151's two-channel **16-bit** DAC runs at **250 MHz** with output
amplitudes limited to **2 V peak-to-peak**.  The model converts code
streams to voltages with clipping and zero-order-hold reconstruction; a
runtime-programmable output scaling mirrors the SpartanMC parameter
interface's ability to "adjust the scaling of output voltages".
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError
from repro.obs import get_registry
from repro.obs._state import STATE as _OBS
from repro.signal.waveform import Waveform

__all__ = ["DAC"]

_CLIPS = get_registry().counter(
    "signal_dac_clips_total", "DAC codes clipped at the output rails"
)
_SAMPLES = get_registry().counter(
    "signal_dac_samples_total", "samples converted by the DAC models"
)


class DAC:
    """Bit-accurate DAC channel.

    Parameters
    ----------
    bits:
        Resolution (16 for the FMC151 DAC).
    vpp:
        Full-scale peak-to-peak output range in volts (2.0 in the bench).
    sample_rate:
        Sample clock in Hz (250 MHz in the bench).
    scale:
        Runtime output scaling applied to requested voltages before
        conversion (set via the parameter interface).
    """

    def __init__(
        self,
        bits: int = 16,
        vpp: float = 2.0,
        sample_rate: float = 250e6,
        scale: float = 1.0,
    ) -> None:
        if bits < 1 or bits > 32:
            raise SignalError(f"bits must be in [1, 32], got {bits}")
        if vpp <= 0.0:
            raise SignalError("vpp must be positive")
        if sample_rate <= 0.0:
            raise SignalError("sample_rate must be positive")
        self.bits = int(bits)
        self.vpp = float(vpp)
        self.sample_rate = float(sample_rate)
        self.scale = float(scale)

    @property
    def full_scale(self) -> float:
        """Positive output rail in volts (vpp/2)."""
        return 0.5 * self.vpp

    @property
    def lsb(self) -> float:
        """Voltage step of one code."""
        return self.vpp / (2**self.bits)

    @property
    def code_min(self) -> int:
        """Most negative accepted code."""
        return -(2 ** (self.bits - 1))

    @property
    def code_max(self) -> int:
        """Most positive accepted code."""
        return 2 ** (self.bits - 1) - 1

    def set_scale(self, scale: float) -> None:
        """Program the runtime output scaling (parameter interface)."""
        self.scale = float(scale)

    def saturation_level(self, fraction: float) -> float:
        """Output level (volts) at ``fraction`` of full scale.

        The :mod:`repro.faults` DAC-clipping model: a degraded output
        stage saturates at this level instead of the rail.
        """
        if not 0.0 <= fraction <= 1.0:
            raise SignalError(
                f"saturation fraction must be in [0, 1], got {fraction!r}"
            )
        return fraction * self.full_scale

    def volts_to_codes(self, volts) -> np.ndarray:
        """Convert requested voltages (after scaling) to clipped codes."""
        v = np.asarray(volts, dtype=float) * self.scale
        codes = np.round(v / self.lsb).astype(np.int64)
        if _OBS.enabled:
            _SAMPLES.inc(codes.size)
            clipped = int(
                np.count_nonzero((codes < self.code_min) | (codes > self.code_max))
            )
            if clipped:
                _CLIPS.inc(clipped)
        return np.clip(codes, self.code_min, self.code_max)

    def convert(self, volts) -> np.ndarray:
        """Requested voltages → actual analogue output voltages."""
        return self.volts_to_codes(volts) * self.lsb

    def volts_to_codes_scalar(self, volts: float) -> int:
        """Scalar fast path of :meth:`volts_to_codes` (identical
        transfer: ``round`` and ``np.round`` are both half-even)."""
        code = round(float(volts) * self.scale / self.lsb)
        lo, hi = self.code_min, self.code_max
        if _OBS.enabled:
            _SAMPLES.inc()
            if code < lo or code > hi:
                _CLIPS.inc()
        if code < lo:
            return lo
        if code > hi:
            return hi
        return code

    def convert_scalar(self, volts: float) -> float:
        """Scalar fast path of :meth:`convert` (identical transfer)."""
        return self.volts_to_codes_scalar(volts) * self.lsb

    def render_waveform(self, volts: np.ndarray, t0: float = 0.0) -> Waveform:
        """Produce the analogue output waveform for a code-rate sample block."""
        return Waveform(self.convert(volts), self.sample_rate, t0)

    def reconstruct(self, volts: np.ndarray, oversample: int = 4) -> np.ndarray:
        """Zero-order-hold reconstruction at ``oversample``× the DAC rate.

        Models the staircase the analogue side of the bench sees; useful
        for plotting and for jitter analyses of the output edge timing.
        """
        if oversample < 1:
            raise SignalError("oversample must be >= 1")
        out = self.convert(volts)
        return np.repeat(out, oversample)
