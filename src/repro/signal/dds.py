"""Direct digital synthesis (DDS) signal sources.

The test bench (paper Fig. 4) uses three DDS modules that generate
synchronised RF signals with a programmable phase relationship; their
phase accumulators are reset simultaneously by a mini control system and
they share the BuTiS campus clock.  :class:`DDS` models one phase-
accumulator synthesiser; :class:`GroupDDS` models the synchronised group
(reference at f_R, gap at h·f_R, plus optional monitor outputs).

Two evaluation modes are provided:

* **streamed** — :meth:`DDS.generate` produces blocks of samples at the
  DDS sample clock with a persistent phase accumulator (used by the
  sample-accurate HIL framework);
* **analytic** — :meth:`DDS.voltage_at` evaluates the ideal output at
  arbitrary times (used by the revolution-level fast path; identical
  phase bookkeeping, no sample grid).

Frequency and phase-offset changes take effect phase-continuously, as in
real DDS hardware: the accumulated phase is preserved across programming
events.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.constants import TWO_PI
from repro.errors import SignalError
from repro.signal.waveform import Waveform

__all__ = ["DDS", "GroupDDS"]


class DDS:
    """One phase-continuous sinusoidal synthesiser.

    Parameters
    ----------
    frequency:
        Output frequency in Hz.
    amplitude:
        Peak output amplitude in volts.
    sample_rate:
        Sample clock for the streamed mode.  Frequencies at or above the
        Nyquist rate are rejected.
    phase_offset:
        Initial phase offset in radians (the runtime-programmable port the
        beam-phase control loop actuates).
    """

    def __init__(
        self,
        frequency: float,
        amplitude: float = 1.0,
        sample_rate: float = 250e6,
        phase_offset: float = 0.0,
    ) -> None:
        if sample_rate <= 0.0:
            raise SignalError("sample_rate must be positive")
        if amplitude < 0.0:
            raise SignalError("amplitude must be non-negative")
        self.sample_rate = float(sample_rate)
        self.amplitude = float(amplitude)
        self._frequency = 0.0
        self.phase_offset = float(phase_offset)
        #: Accumulated phase (radians) at time :attr:`current_time`.
        self._accum_phase = 0.0
        #: Time corresponding to the current accumulator value.
        self.current_time = 0.0
        self.set_frequency(frequency)

    @property
    def frequency(self) -> float:
        """Current output frequency in Hz."""
        return self._frequency

    def set_frequency(self, frequency: float) -> None:
        """Program a new frequency, phase-continuously."""
        if frequency <= 0.0:
            raise SignalError(f"frequency must be positive, got {frequency}")
        if frequency >= 0.5 * self.sample_rate:
            raise SignalError(
                f"frequency {frequency} Hz is not below Nyquist "
                f"({0.5 * self.sample_rate} Hz)"
            )
        self._frequency = float(frequency)

    def set_phase_offset(self, phase_offset: float) -> None:
        """Program the phase-offset port (radians), effective immediately."""
        self.phase_offset = float(phase_offset)

    def reset_phase(self, at_time: float = 0.0) -> None:
        """Simultaneous phase reset (the paper's mini-control-system sync)."""
        self._accum_phase = 0.0
        self.current_time = float(at_time)

    def glitch_phase(self, radians: float) -> None:
        """Kick the phase accumulator by ``radians`` (fault injection).

        Models a synchronisation glitch: the accumulator jumps but stays
        phase-continuous afterwards, so the error persists until the
        next :meth:`reset_phase` — the :mod:`repro.faults`
        DDS-phase-glitch mechanism on the streamed signal path.
        """
        self._accum_phase += float(radians)

    def phase_at(self, t) -> np.ndarray | float:
        """Total phase (radians) at time(s) ``t`` ≥ the last event time.

        Valid while the frequency stays constant from
        :attr:`current_time` to ``t`` — callers that ramp the frequency
        must advance the DDS stepwise (which is what the hardware does).
        """
        t_arr = np.asarray(t, dtype=float)
        phase = (
            self._accum_phase
            + TWO_PI * self._frequency * (t_arr - self.current_time)
            + self.phase_offset
        )
        return float(phase) if np.isscalar(t) else phase

    def voltage_at(self, t) -> np.ndarray | float:
        """Ideal (analytic) output voltage at time(s) ``t``."""
        v = self.amplitude * np.sin(self.phase_at(t))
        return float(v) if np.isscalar(t) else v

    def advance_to(self, t: float) -> None:
        """Move the accumulator to time ``t`` without generating samples."""
        if t < self.current_time:
            raise SignalError("DDS cannot run backwards")
        self._accum_phase += TWO_PI * self._frequency * (t - self.current_time)
        self._accum_phase = math.remainder(self._accum_phase, TWO_PI)
        self.current_time = t

    def generate(self, n_samples: int) -> Waveform:
        """Produce the next ``n_samples`` output samples (streamed mode)."""
        if n_samples < 0:
            raise SignalError("n_samples must be non-negative")
        t0 = self.current_time
        n = np.arange(n_samples)
        phase = self._accum_phase + TWO_PI * self._frequency * n / self.sample_rate + self.phase_offset
        samples = self.amplitude * np.sin(phase)
        self.advance_to(t0 + n_samples / self.sample_rate)
        return Waveform(samples, self.sample_rate, t0)


class GroupDDS:
    """A group of phase-synchronised DDS modules (paper Fig. 4).

    Creates a *reference* DDS at the revolution frequency and a *gap* DDS
    at the RF frequency h·f_R.  An optional callable ``gap_phase_drive``
    (e.g. the AWG phase-jump pattern) is added to the gap DDS phase
    offset; the control-loop correction is applied through
    :meth:`set_control_phase`.

    All members share the same sample clock and are reset together, so
    their phase relationship is deterministic — the property the BuTiS
    system provides in the real facility.
    """

    def __init__(
        self,
        revolution_frequency: float,
        harmonic: int,
        amplitude: float = 1.0,
        sample_rate: float = 250e6,
        gap_phase_drive: Callable[[float], float] | None = None,
    ) -> None:
        if harmonic < 1:
            raise SignalError(f"harmonic must be >= 1, got {harmonic}")
        self.harmonic = int(harmonic)
        self.reference = DDS(revolution_frequency, amplitude, sample_rate)
        self.gap = DDS(revolution_frequency * harmonic, amplitude, sample_rate)
        self._gap_phase_drive = gap_phase_drive
        self._control_phase = 0.0

    @property
    def revolution_frequency(self) -> float:
        """Reference (revolution) frequency in Hz."""
        return self.reference.frequency

    def set_revolution_frequency(self, f_rev: float) -> None:
        """Retune both DDS phase-continuously (acceleration-ramp support)."""
        self.reference.set_frequency(f_rev)
        self.gap.set_frequency(f_rev * self.harmonic)

    def set_control_phase(self, phase_rad: float) -> None:
        """Apply the beam-phase control loop's correction to the gap DDS."""
        self._control_phase = float(phase_rad)
        self._apply_gap_phase(self.gap.current_time)

    def _apply_gap_phase(self, t: float) -> None:
        drive = self._gap_phase_drive(t) if self._gap_phase_drive is not None else 0.0
        self.gap.set_phase_offset(drive + self._control_phase)

    def reset_phase(self, at_time: float = 0.0) -> None:
        """Simultaneous phase reset of all members."""
        self.reference.reset_phase(at_time)
        self.gap.reset_phase(at_time)
        self._apply_gap_phase(at_time)

    def advance_to(self, t: float) -> None:
        """Advance both synthesisers to time ``t``, refreshing the gap
        phase drive (the AWG pattern is sampled at the new time)."""
        self.reference.advance_to(t)
        self.gap.advance_to(t)
        self._apply_gap_phase(t)

    def generate(self, n_samples: int) -> tuple[Waveform, Waveform]:
        """Produce the next block of (reference, gap) samples.

        The gap phase drive is refreshed at the block boundary; blocks
        should therefore be short relative to the drive's time structure
        (the HIL framework uses one block per reference period).
        """
        self._apply_gap_phase(self.gap.current_time)
        ref = self.reference.generate(n_samples)
        gap = self.gap.generate(n_samples)
        return ref, gap
