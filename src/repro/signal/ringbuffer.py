"""Dual-port sample-capture ring buffer (paper Section III-B).

Each input signal of the FPGA framework is captured into a ring buffer
that "needs to hold at least two full cycles of the reference voltage to
accommodate for positive and negative Δt values"; at revolution
frequencies down to 100 kHz that is up to 2 × 2500 samples, so the
hardware uses a capacity of **2¹³ = 8192** samples.  "A second port on
each buffer allows the simulator to access a sample value in each cycle
without interrupting the capturing process."

:class:`RingBuffer` reproduces that component: a write port streaming ADC
samples at 250 MHz, and a read port addressed *absolutely* (by global
sample index), with wrap-around and overwrite checking — reads of samples
that have already been overwritten raise, because on the hardware they
would silently return wrong data; the model makes that bug loud.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError
from repro.signal.interpolation import linear_fetch_pair

__all__ = ["RingBuffer"]


class RingBuffer:
    """Power-of-two-sized capture buffer with absolute addressing.

    Parameters
    ----------
    capacity:
        Buffer depth in samples; must be a power of two (8192 in the
        paper's design, so address wrapping is a bit-mask).
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 2 or (capacity & (capacity - 1)) != 0:
            raise SignalError(f"capacity must be a power of two >= 2, got {capacity}")
        self.capacity = int(capacity)
        self._mask = self.capacity - 1
        self._data = np.zeros(self.capacity, dtype=float)
        #: Total number of samples ever written (head pointer).
        self.write_count = 0

    def write(self, samples) -> None:
        """Append a block of samples (the ADC stream).

        Vectorised: blocks longer than the capacity keep only their tail,
        exactly as continuous overwriting would.
        """
        s = np.asarray(samples, dtype=float).ravel()
        n = s.size
        if n == 0:
            return
        if n >= self.capacity:
            # Only the last `capacity` samples survive; physical slot of
            # global index g is g & mask.
            g0 = self.write_count + n - self.capacity
            idx = (np.arange(g0, g0 + self.capacity)) & self._mask
            self._data[idx] = s[n - self.capacity :]
            self.write_count += n
            return
        start = self.write_count & self._mask
        end = start + n
        if end <= self.capacity:
            self._data[start:end] = s
        else:
            split = self.capacity - start
            self._data[start:] = s[:split]
            self._data[: end - start - split] = s[split:]
        self.write_count += n

    def _check_window(self, oldest: int, newest: int) -> None:
        if newest >= self.write_count:
            raise SignalError(
                f"read of sample {newest} ahead of write pointer {self.write_count}"
            )
        if oldest < self.write_count - self.capacity:
            raise SignalError(
                f"read of sample {oldest} already overwritten "
                f"(window is [{self.write_count - self.capacity}, {self.write_count}))"
            )
        if oldest < 0:
            raise SignalError(f"negative sample index {oldest}")

    def read(self, index: int) -> float:
        """Read the sample with *global* index ``index`` (second port)."""
        self._check_window(index, index)
        return float(self._data[index & self._mask])

    def read_block(self, start: int, n: int) -> np.ndarray:
        """Read ``n`` consecutive samples starting at global index ``start``."""
        if n < 0:
            raise SignalError("n must be non-negative")
        if n == 0:
            return np.empty(0)
        self._check_window(start, start + n - 1)
        idx = (np.arange(start, start + n)) & self._mask
        return self._data[idx].copy()

    def fetch_interpolated(self, address: float) -> float:
        """Linearly interpolated fetch at a fractional global address.

        Reproduces the model program's two-sample fetch: "a second value
        is requested from the buffer to perform linear interpolation to
        increase the accuracy" (paper Section IV-B).
        """
        base = int(np.floor(address))
        self._check_window(base, base + 1)
        a = self._data[base & self._mask]
        b = self._data[(base + 1) & self._mask]
        return linear_fetch_pair(a, b, address - base)

    def oldest_valid_index(self) -> int:
        """Smallest global index still present in the buffer."""
        return max(0, self.write_count - self.capacity)

    @property
    def occupancy(self) -> int:
        """Valid samples currently held (saturates at capacity)."""
        return min(self.write_count, self.capacity)

    @property
    def fill_fraction(self) -> float:
        """Occupancy as a fraction of capacity, in [0, 1]."""
        return self.occupancy / self.capacity
