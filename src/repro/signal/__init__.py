"""Analogue/digital signal-chain substrate.

Re-implements, sample-accurately, every signal-path component of the
paper's test bench (Figs. 2–4): DDS signal generation, the AWG phase-jump
drive, ADC/DAC conversion, the FPGA framework's ring buffers,
zero-crossing and period-length detectors, Gaussian beam-pulse playback,
the control loop's FIR filtering and the DSP phase measurement.
"""

from repro.signal.waveform import Waveform
from repro.signal.dds import DDS, GroupDDS
from repro.signal.awg import PhaseJumpPattern, TransportDelay
from repro.signal.adc import ADC
from repro.signal.dac import DAC
from repro.signal.ringbuffer import RingBuffer
from repro.signal.zerocrossing import ZeroCrossingDetector, PeriodLengthDetector
from repro.signal.interpolation import linear_fetch
from repro.signal.gauss_pulse import GaussPulseGenerator, gaussian_pulse_table
from repro.signal.parametric_pulse import ParametricPulseGenerator
from repro.signal.bunch_monitor import PulseMeasurement, detect_pulses
from repro.signal.fir import (
    PhaseControlFilter,
    design_lowpass_fir,
    design_bandpass_fir,
    fir_frequency_response,
)
from repro.signal.phase_detector import ArrivalTimePhaseDetector, IQPhaseDetector
from repro.signal.filters import moving_average

__all__ = [
    "Waveform",
    "DDS",
    "GroupDDS",
    "PhaseJumpPattern",
    "TransportDelay",
    "ADC",
    "DAC",
    "RingBuffer",
    "ZeroCrossingDetector",
    "PeriodLengthDetector",
    "linear_fetch",
    "GaussPulseGenerator",
    "gaussian_pulse_table",
    "ParametricPulseGenerator",
    "PulseMeasurement",
    "detect_pulses",
    "PhaseControlFilter",
    "design_lowpass_fir",
    "design_bandpass_fir",
    "fir_frequency_response",
    "ArrivalTimePhaseDetector",
    "IQPhaseDetector",
    "moving_average",
]
