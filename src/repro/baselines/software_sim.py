"""The rejected pure-software beam simulator.

"After several investigations, we decided that a pure software based
solution for the evaluation of bunch models is not feasible.  In
principle it could be fast enough, but the time jitter induced by the
microarchitecture and the interfacing to the sensors was too high."

:class:`SoftwareBeamSimulator` runs the identical model equations (it
delegates to the bench's Python fast path physics) but stamps every
output with a latency drawn from
:class:`~repro.hil.jitter.SoftwareTimingModel`.  The resulting
output-time jitter — and the deadline misses at MHz revolution rates —
is the quantitative version of the paper's feasibility argument (E7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hil.jitter import SoftwareTimingModel, TimingSample

__all__ = ["SoftwareBeamSimulator", "SoftwareRunStats"]


@dataclass(frozen=True)
class SoftwareRunStats:
    """Output-timing statistics of a software simulator run."""

    latency: TimingSample
    deadline_miss_rate: float
    revolution_period: float

    @property
    def feasible(self) -> bool:
        """Hard-real-time feasibility: no observed miss at all."""
        return self.deadline_miss_rate == 0.0


class SoftwareBeamSimulator:
    """Software implementation of the beam model with realistic jitter.

    Parameters
    ----------
    timing:
        The CPU latency model; defaults to a well-tuned implementation
        (400 ns median loop, 25 ns RMS noise, rare microsecond-scale
        tail events).
    """

    def __init__(self, timing: SoftwareTimingModel | None = None) -> None:
        self.timing = timing if timing is not None else SoftwareTimingModel()

    def output_times(
        self,
        f_rev: float,
        n_revolutions: int,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Output event times for ``n_revolutions`` at frequency ``f_rev``.

        The ideal output of revolution *n* is at n·T_R; the software adds
        its per-iteration latency.  The *jitter* is the deviation from a
        constant offset — exactly what corrupts the emulated beam phase,
        since a latency excursion looks like a (false) bunch phase shift.
        """
        if f_rev <= 0:
            raise ConfigurationError("f_rev must be positive")
        if n_revolutions < 1:
            raise ConfigurationError("need at least one revolution")
        rng = rng if rng is not None else np.random.default_rng()
        base = np.arange(n_revolutions) / f_rev
        return base + self.timing.sample(n_revolutions, rng)

    def phase_error_deg(
        self,
        f_rev: float,
        harmonic: int,
        n_revolutions: int,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Jitter-induced *false* beam-phase error in RF degrees.

        A latency deviation δ from the median shifts the emitted bunch
        pulse by δ seconds = 360·h·f_R·δ degrees of apparent beam phase.
        Compare with the synchrotron-oscillation amplitudes of interest
        (degrees): if comparable, the software simulator's output noise
        masquerades as beam motion, which is the paper's show-stopper.
        """
        rng = rng if rng is not None else np.random.default_rng()
        lat = self.timing.sample(n_revolutions, rng)
        deviation = lat - np.median(lat)
        return 360.0 * harmonic * f_rev * deviation

    def run_stats(
        self,
        f_rev: float,
        n_revolutions: int = 200_000,
        rng: np.random.Generator | None = None,
    ) -> SoftwareRunStats:
        """Latency summary + deadline-miss rate at revolution rate ``f_rev``."""
        rng = rng if rng is not None else np.random.default_rng()
        lat = self.timing.sample(n_revolutions, rng)
        t_rev = 1.0 / f_rev
        misses = float(np.count_nonzero(lat > t_rev)) / n_revolutions
        return SoftwareRunStats(
            latency=TimingSample.from_latencies(lat),
            deadline_miss_rate=misses,
            revolution_period=t_rev,
        )
