"""Offline multi-particle reference tracker / machine-experiment emulator.

Plays two roles:

1. **Offline baseline** (related work, Section II): a BLonD-class
   multi-particle longitudinal tracker.  It is physically richer than the
   bench's single macro particle — it shows Landau damping and
   filamentation — but has no real-time story; the E7/E8 benches quantify
   that gap.

2. **The "real machine" of Fig. 5b**: we have no SIS18 beam time, so the
   machine development experiment (MDE) of 2023-11-24 is emulated by
   tracking an ensemble with energy spread through the *same* phase-jump
   drive and the *same* beam-phase control loop as the bench.  The
   paper's own analysis supports this substitution: the machine response
   is the coherent dipole oscillation, damped dominantly by the control
   loop, with only weak additional Landau damping ("since the damping
   from the control loop is much stronger, the effect of filamentation
   and Landau damping can be neglected for the controlled system").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.constants import deg_to_rad
from repro.control import BeamPhaseControlLoop, ControlLoopConfig
from repro.errors import ConfigurationError
from repro.hil.realtime import JitterStats
from repro.physics.distributions import gaussian_bunch
from repro.physics.ion import IonSpecies
from repro.physics.multiparticle import MultiParticleTracker
from repro.physics.rf import RFSystem, voltage_for_synchrotron_frequency
from repro.physics.ring import SynchrotronRing
from repro.signal.awg import PhaseJumpPattern

__all__ = ["MachineExperimentConfig", "MachineExperimentEmulator", "MachineRunResult"]


@dataclass(frozen=True)
class MachineExperimentConfig:
    """Configuration of the emulated machine development experiment.

    Defaults are the MDE values the paper reports: 10° phase jumps (the
    bench used 8°), synchrotron frequency 1.2 kHz, f_ref = 800 kHz,
    h = 4, ¹⁴N⁷⁺.
    """

    ring: SynchrotronRing
    ion: IonSpecies
    harmonic: int = 4
    revolution_frequency: float = 800e3
    synchrotron_frequency: float = 1.2e3
    jump_deg: float = 10.0
    jump_toggle_period: float = 0.05
    jump_start_time: float = 0.005
    n_particles: int = 5000
    #: RMS bunch length in seconds (sets the energy spread through the
    #: matched distribution, hence the Landau-damping strength).
    sigma_delta_t: float = 15e-9
    control: ControlLoopConfig | None = None
    control_enabled: bool = True
    seed: int = 20231124  # the MDE date
    record_every: int = 8

    def __post_init__(self) -> None:
        if self.n_particles < 2:
            raise ConfigurationError("need at least 2 macro particles")
        if self.sigma_delta_t <= 0:
            raise ConfigurationError("sigma_delta_t must be positive")
        if self.record_every < 1:
            raise ConfigurationError("record_every must be >= 1")


@dataclass
class MachineRunResult:
    """Recorded traces of one emulated machine experiment."""

    time: np.ndarray
    #: Coherent dipole phase of the bunch (degrees at h·f_R), the
    #: quantity the machine's DSP reports in Fig. 5b.
    phase_deg: np.ndarray
    #: RMS bunch length trace (quadrupole/filamentation observable).
    sigma_delta_t: np.ndarray
    correction_deg: np.ndarray
    jump_deg: np.ndarray


class MachineExperimentEmulator:
    """Closed-loop multi-particle emulation of the SIS18 MDE."""

    def __init__(self, config: MachineExperimentConfig) -> None:
        self.config = config
        ring, ion = config.ring, config.ion
        self.f_rev = config.revolution_frequency
        self.gamma0 = ring.gamma_from_revolution_frequency(self.f_rev)
        probe = RFSystem(harmonic=config.harmonic, voltage=1.0)
        voltage = voltage_for_synchrotron_frequency(
            ring, ion, probe, self.gamma0, config.synchrotron_frequency
        )
        self.rf = probe.with_voltage(voltage)
        rng = np.random.default_rng(config.seed)
        delta_t, delta_gamma = gaussian_bunch(
            ring, ion, self.rf, self.gamma0, config.sigma_delta_t, config.n_particles, rng
        )
        self._gap_phase_rad = 0.0
        self.tracker = MultiParticleTracker(
            ring, ion, self.rf, delta_t, delta_gamma, self.gamma0,
            gap_voltage=self._gap_voltage,
        )
        self.jump = PhaseJumpPattern(
            jump_deg=config.jump_deg,
            toggle_period=config.jump_toggle_period,
            start_time=config.jump_start_time,
        )
        if config.control is not None:
            loop_cfg = config.control
            if loop_cfg.enabled != config.control_enabled:
                # control_enabled is the master switch even when an
                # explicit loop configuration is supplied.
                from dataclasses import replace

                loop_cfg = replace(loop_cfg, enabled=config.control_enabled)
        else:
            loop_cfg = ControlLoopConfig(
                sample_rate=self.f_rev, enabled=config.control_enabled
            )
        self.control = BeamPhaseControlLoop(loop_cfg)
        self._time = 0.0
        # Scratch phase buffer reused each turn.
        self._omega_rf = 2.0 * math.pi * config.harmonic * self.f_rev

    def _gap_voltage(self, delta_t: np.ndarray, f_rev: float, turn: int) -> np.ndarray:
        """Gap voltage for the whole ensemble with the commanded phase."""
        return self.rf.voltage * np.sin(self._omega_rf * delta_t + self._gap_phase_rad)

    def measured_phase_deg(self) -> float:
        """DSP dipole-phase reading (same polarity as the bench)."""
        mean_dt = float(self.tracker.delta_t.mean())
        return -360.0 * self.config.harmonic * self.f_rev * mean_dt

    def run(self, duration: float) -> MachineRunResult:
        """Run the emulated machine experiment for ``duration`` seconds."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        n_turns = int(round(duration * self.f_rev))
        every = self.config.record_every
        n_rec = n_turns // every + 1
        time = np.empty(n_rec)
        phase = np.empty(n_rec)
        sigma = np.empty(n_rec)
        corr = np.empty(n_rec)
        jump = np.empty(n_rec)
        idx = 0

        def record() -> None:
            nonlocal idx
            time[idx] = self._time
            phase[idx] = self.measured_phase_deg()
            sigma[idx] = float(self.tracker.delta_t.std())
            corr[idx] = self.control.last_output_deg
            jump[idx] = float(self.jump.phase_deg_at(self._time))
            idx += 1

        record()
        for n in range(n_turns):
            jump_rad = float(self.jump.phase_rad_at(self._time))
            self._gap_phase_rad = jump_rad + deg_to_rad(self.control.last_output_deg)
            self.tracker.step(self.f_rev)
            self.control.update(self.measured_phase_deg())
            self._time += 1.0 / self.f_rev
            if (n + 1) % every == 0:
                record()
        return MachineRunResult(
            time=time[:idx],
            phase_deg=phase[:idx],
            sigma_delta_t=sigma[:idx],
            correction_deg=corr[:idx],
            jump_deg=jump[:idx],
        )
