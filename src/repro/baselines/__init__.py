"""Baselines and comparators.

* :mod:`offline_tracker` — a BLonD/ESME/Long1D-style offline
  multi-particle reference (the class of tools the paper cites as "far
  from the real-time requirements"), doubling as the "real machine"
  stand-in for Fig. 5b;
* :mod:`software_sim` — the rejected pure-software simulator with its
  microarchitectural output jitter;
* :mod:`fpga_direct` — the rejected direct-FPGA implementation's
  turnaround cost model (synthesis hours vs. CGRA seconds).
"""

from repro.baselines.offline_tracker import (
    MachineExperimentConfig,
    MachineExperimentEmulator,
    MachineRunResult,
)
from repro.baselines.software_sim import SoftwareBeamSimulator
from repro.baselines.fpga_direct import DirectFpgaFlow, turnaround_comparison

__all__ = [
    "MachineExperimentConfig",
    "MachineExperimentEmulator",
    "MachineRunResult",
    "SoftwareBeamSimulator",
    "DirectFpgaFlow",
    "turnaround_comparison",
]
