"""Turnaround cost model: direct FPGA implementation vs. CGRA overlay.

"An alternative could be a Field Programmable Gate Array (FPGA)
implementation of the model. ... Yet, it would make the development of
the simulation very tedious, as we can expect hardware synthesis times
of multiple hours."  And for the CGRA: "changes to the C implementation
are available on the experimental setup in seconds (compared to a full
FPGA synthesis that can easily take hours)."

:class:`DirectFpgaFlow` is a coarse synthesis-time model (documented
constants, calibrated to typical Vivado runs for mid-size Virtex-7
designs); :func:`turnaround_comparison` pits it against the *measured*
wall-clock of our CGRA tool flow — E8's table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cgra.models import CompiledModel
from repro.errors import ConfigurationError

__all__ = ["DirectFpgaFlow", "TurnaroundRow", "turnaround_comparison"]


@dataclass(frozen=True)
class DirectFpgaFlow:
    """Coarse model of a full FPGA synthesis + place&route run.

    Parameters (defaults are representative of a Virtex-7 VC707 design
    of the framework's size in Vivado; the paper says only "multiple
    hours", which these defaults land in for the relevant LUT counts):

    * ``base_minutes`` — flow fixed costs (elaboration, IO, bitgen);
    * ``minutes_per_kluts`` — marginal synthesis+P&R time per 1000 LUTs.
    """

    base_minutes: float = 25.0
    minutes_per_kluts: float = 0.9

    def synthesis_seconds(self, design_kluts: float) -> float:
        """Estimated wall-clock of one full synthesis run, in seconds."""
        if design_kluts <= 0:
            raise ConfigurationError("design size must be positive")
        return 60.0 * (self.base_minutes + self.minutes_per_kluts * design_kluts)


@dataclass(frozen=True)
class TurnaroundRow:
    """One row of the E8 comparison table."""

    flow: str
    turnaround_seconds: float
    produces: str


def turnaround_comparison(
    model: CompiledModel,
    fpga: DirectFpgaFlow | None = None,
    design_kluts: float = 180.0,
) -> list[TurnaroundRow]:
    """Build the model-change turnaround table (E8).

    ``design_kluts`` defaults to a plausible utilisation of the paper's
    framework + CGRA on the VC707's 485k-LUT part.
    """
    fpga = fpga if fpga is not None else DirectFpgaFlow()
    return [
        TurnaroundRow(
            flow="CGRA overlay (measured: parse + schedule + contexts)",
            turnaround_seconds=model.compile_seconds,
            produces="context memories (bitstream insert, no synthesis)",
        ),
        TurnaroundRow(
            flow="direct FPGA implementation (modelled synthesis + P&R)",
            turnaround_seconds=fpga.synthesis_seconds(design_kluts),
            produces="full bitstream",
        ),
    ]
