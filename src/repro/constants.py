"""Physical constants used throughout the reproduction.

All values follow CODATA 2018 (matching :mod:`scipy.constants`), but are
spelled out here so the package's numeric behaviour is pinned independently
of the SciPy version installed.

Unit conventions used across :mod:`repro`
-----------------------------------------
* time               — seconds
* length             — metres
* voltage            — volts (real gap voltage, i.e. several kV)
* energy             — electron-volts unless a name says ``_joule``
* mass               — unified atomic mass units (``u``) in user-facing API,
                       converted internally via :data:`ATOMIC_MASS_EV`
* charge             — elementary charges (``Q`` = charge *state*) in
                       user-facing API
* frequency          — hertz
* phase              — radians unless a name says ``_deg``

The tracking equations (paper Eqs. 2, 3 and 6) are evaluated in the
``(Δt, Δγ)`` longitudinal phase-space coordinates, exactly as in the paper.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum [m/s] (exact).
SPEED_OF_LIGHT: float = 299_792_458.0

#: Elementary charge [C] (exact, SI 2019).
ELEMENTARY_CHARGE: float = 1.602_176_634e-19

#: Unified atomic mass unit [kg].
ATOMIC_MASS_KG: float = 1.660_539_066_60e-27

#: Rest energy of one atomic mass unit [eV]: u·c²/e.
ATOMIC_MASS_EV: float = ATOMIC_MASS_KG * SPEED_OF_LIGHT**2 / ELEMENTARY_CHARGE

#: Electron rest energy [eV].
ELECTRON_MASS_EV: float = 510_998.950_00

#: Proton rest energy [eV].
PROTON_MASS_EV: float = 938_272_088.16e-3 * 1e3  # 938.27208816 MeV

#: 2π, spelled once.
TWO_PI: float = 2.0 * math.pi


def deg_to_rad(angle_deg: float) -> float:
    """Convert degrees to radians (scalar or array-like passthrough)."""
    return angle_deg * (math.pi / 180.0)


def rad_to_deg(angle_rad: float) -> float:
    """Convert radians to degrees (scalar or array-like passthrough)."""
    return angle_rad * (180.0 / math.pi)
