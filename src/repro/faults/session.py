"""Session-wide fault arming (the runner's ``--faults`` flag).

A bench constructed with an explicit ``faults=...`` config always wins;
when its config carries no faults it consults this module, so one CLI
flag can inject a scenario into *any* existing experiment without
threading a parameter through every config layer.

The armed specs are plain data, which keeps propagation to worker
processes trivial: the runner appends
``functools.partial(arm_from_payload, payload)`` to the pool's primer
list, so forked workers inherit the armed state and spawned workers
re-arm from the pickled JSON payload in their initializer.
"""

from __future__ import annotations

from repro.faults.spec import FaultSpec

__all__ = [
    "arm_session_faults",
    "arm_from_payload",
    "clear_session_faults",
    "session_faults",
]

_SESSION_FAULTS: tuple[FaultSpec, ...] = ()


def arm_session_faults(specs: tuple[FaultSpec, ...] | list[FaultSpec]) -> None:
    """Arm faults for every bench built in this process from now on."""
    global _SESSION_FAULTS
    _SESSION_FAULTS = tuple(specs)


def arm_from_payload(payload) -> tuple[FaultSpec, ...]:
    """Arm from ``FaultSpec.to_dict`` payloads (worker-pool primer).

    ``payload`` must be a JSON-style list of spec dicts; returns the
    validated specs (re-validation happens in :meth:`FaultSpec.from_dict`).
    """
    from repro.errors import FaultSpecError

    if not isinstance(payload, (list, tuple)):
        raise FaultSpecError(
            f"fault payload must be a list of FaultSpec dicts, "
            f"got {type(payload).__name__}"
        )
    for entry in payload:
        if not isinstance(entry, dict):
            raise FaultSpecError(
                f"fault payload entries must be dicts, got {type(entry).__name__}"
            )
    specs = tuple(FaultSpec.from_dict(d) for d in payload)
    arm_session_faults(specs)
    return specs


def clear_session_faults() -> None:
    """Disarm (benches built afterwards run clean)."""
    global _SESSION_FAULTS
    _SESSION_FAULTS = ()


def session_faults() -> tuple[FaultSpec, ...]:
    """The currently armed session faults (empty tuple when disarmed)."""
    return _SESSION_FAULTS
