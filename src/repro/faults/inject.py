"""Fault programs: compiled, time-indexed injection state.

A :class:`FaultProgram` compiles a list of :class:`~repro.faults.spec.
FaultSpec`\\ s into the per-revolution state the closed-loop benches read
on their sensor hot path.  The split keeps injection free when disarmed
and cheap when armed:

* **compile time** (construction) — validate every spec against the
  execution context (batch width, ADC resolution), realise stochastic
  fault content (microphonic spectra) from per-spec seeds, and separate
  loop faults from substrate faults
  (:data:`~repro.faults.spec.FaultKind.CGRA_CONTEXT_CORRUPTION` never
  touches the loop physics — it corrupts the context-memory *images* and
  is caught by the PR-2 verifier, see :func:`corrupt_context_images`);
* **per revolution** — :meth:`FaultProgram.update` re-evaluates the
  active window of every spec and folds the active ones into four
  channel values (gap gain, gap phase, gap clip level, stuck-bit
  masks);
* **per sensor read** — the bench applies those values inside its
  analytic handlers.  When no fault is active at the current time the
  handlers take their original branch, so an armed-but-not-yet-onset run
  is bit-identical to an unfaulted one; a disarmed bench
  (``faults=()``) never constructs a program at all and pays one
  ``is None`` check per revolution (pinned by
  ``benchmarks/test_fault_overhead.py``).

Scalar and batched modes share the compile step; the batched mode keeps
``[B]`` arrays with neutral elements (gain 1, phase 0, clip ∞, mask 0)
on unfaulted lanes — multiplying by 1.0, adding 0.0 and clipping at ±∞
are bitwise no-ops, so co-resident lanes are undisturbed.

Fault transfer model (all on the ADC-volt signals of the Fig. 4 bench):

===========================  ===========================================
``CAVITY_FAILURE``           gap amplitude × (1 − m): fraction m of the
                             cavity gradient lost (C-ADS fault model).
``MICROPHONIC_DETUNING``     seeded K-line spectrum in the TESLA
                             microphonics band (10–300 Hz); magnitude is
                             the RMS detuning in Hz, injected as the
                             integrated phase modulation of the gap.
``AMPLIFIER_SATURATION``     gap voltage hard-clipped at ±m volts (ADC
                             input domain).
``DETUNING_TRANSIENT``       gap frequency offset by m Hz while active:
                             phase ramp 2π·m·(t − onset); the
                             synthesiser re-locks when the fault clears.
``ADC_STUCK_BIT``            bit m of the gap ADC's two's-complement
                             output word stuck at 1 (code domain; forces
                             quantisation even with ``quantize_adc``
                             off).
``DAC_CLIPPING``             gap drive clipped at ±m × DAC full scale.
``DDS_PHASE_GLITCH``         gap DDS phase kicked by m radians — an
                             uncommanded jump on the RF the loop must
                             absorb; the accumulator resyncs when the
                             fault clears (cf. ``DDS.glitch_phase``).
``CGRA_CONTEXT_CORRUPTION``  context image entry ``m mod n_entries``
                             corrupted; detection-only (the executor
                             runs off the schedule, the verifier is the
                             detector).
===========================  ===========================================
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import FaultSpecError
from repro.faults.spec import FaultKind, FaultSpec

__all__ = [
    "FaultProgram",
    "MICROPHONIC_LINES",
    "MICROPHONIC_BAND_HZ",
    "corrupt_context_images",
]

#: Spectral lines per microphonic realisation.
MICROPHONIC_LINES = 8
#: Mechanical resonance band of the modelled spectrum, Hz (the TESLA
#: cavity microphonics studies place the dominant lines here).
MICROPHONIC_BAND_HZ = (10.0, 300.0)

#: FaultKinds that act on the closed-loop physics (everything except the
#: substrate corruption, which only exists in the context images).
LOOP_KINDS = frozenset(FaultKind) - {FaultKind.CGRA_CONTEXT_CORRUPTION}


class _Microphonics:
    """One seeded spectrum realisation and its integrated phase."""

    def __init__(self, spec: FaultSpec) -> None:
        rng = np.random.default_rng(spec.seed if spec.seed is not None else 0)
        lo, hi = MICROPHONIC_BAND_HZ
        k = MICROPHONIC_LINES
        # Log-uniform line frequencies across the band, uniform phases;
        # equal per-line amplitudes scaled for the requested RMS detuning
        # (sum of K equal-amplitude incoherent cosines has RMS A·sqrt(K/2)).
        self.freqs = np.exp(rng.uniform(math.log(lo), math.log(hi), k))
        self.thetas = rng.uniform(0.0, 2.0 * math.pi, k)
        amp = spec.magnitude * math.sqrt(2.0 / k)
        # Δf(τ) = Σ A·cos(2π f_k τ + θ_k) integrates to the phase
        # modulation φ(τ) = Σ (A/f_k)·(sin(2π f_k τ + θ_k) − sin θ_k),
        # zero at onset so the fault switches on continuously.
        self.amp_over_f = amp / self.freqs
        self._sin0 = np.sin(self.thetas)
        self.onset = spec.onset_time

    def phase_rad(self, t: float) -> float:
        tau = t - self.onset
        s = np.sin(2.0 * math.pi * self.freqs * tau + self.thetas)
        return float(np.dot(self.amp_over_f, s - self._sin0))


class FaultProgram:
    """Compiled fault state for one bench run (scalar or batched).

    Parameters
    ----------
    specs:
        The faults to arm.  Loop faults must target lane 0 in scalar
        mode (``batch=None``) or a lane below ``batch`` in batched mode.
    batch:
        Number of lockstep lanes, or None for the scalar bench.
    adc_bits:
        Resolution of the gap ADC; stuck-bit indices are validated
        against it here, at injection time (the spec window only knows
        the widest supported converter).
    dac_full_scale:
        Positive rail of the gap drive DAC in ADC-input volts;
        ``DAC_CLIPPING`` magnitudes (fractions) scale it.
    """

    def __init__(
        self,
        specs: tuple[FaultSpec, ...] | list[FaultSpec],
        *,
        batch: int | None = None,
        adc_bits: int = 14,
        dac_full_scale: float = 1.0,
    ) -> None:
        specs = tuple(specs)
        for s in specs:
            if not isinstance(s, FaultSpec):
                raise FaultSpecError(
                    f"faults must be FaultSpec instances, got {type(s).__name__}"
                )
        self.specs = specs
        self.batch = batch
        self.adc_bits = int(adc_bits)
        self.dac_full_scale = float(dac_full_scale)
        self.loop_specs = tuple(s for s in specs if s.kind in LOOP_KINDS)
        self.context_specs = tuple(
            s for s in specs if s.kind is FaultKind.CGRA_CONTEXT_CORRUPTION
        )
        lanes = 1 if batch is None else int(batch)
        for s in self.loop_specs:
            if batch is None and s.target != 0:
                raise FaultSpecError(
                    f"{s.kind.value} targets lane {s.target} on a scalar bench "
                    "(only lane 0 exists)"
                )
            if s.target >= lanes:
                raise FaultSpecError(
                    f"{s.kind.value} targets lane {s.target}, batch has "
                    f"{lanes} lanes"
                )
            if s.kind is FaultKind.ADC_STUCK_BIT and s.magnitude >= self.adc_bits:
                raise FaultSpecError(
                    f"adc_stuck_bit index {int(s.magnitude)} out of range for "
                    f"the {self.adc_bits}-bit ADC"
                )
        self._micro = {
            id(s): _Microphonics(s)
            for s in self.loop_specs
            if s.kind is FaultKind.MICROPHONIC_DETUNING
        }
        #: Earliest onset over the loop faults: before it, update() is a
        #: single float compare per revolution.
        self._first_onset = min(
            (s.onset_time for s in self.loop_specs), default=math.inf
        )

        #: Whether any loop fault is active at the last update() time.
        self.active = False
        if batch is None:
            self.gap_gain = 1.0
            self.gap_phase = 0.0
            self.gap_clip = math.inf
            self.stuck_mask = 0
        else:
            self.gap_gain = np.ones(lanes)
            self.gap_phase = np.zeros(lanes)
            self.gap_clip = np.full(lanes, math.inf)
            self.stuck_mask = np.zeros(lanes, dtype=np.int64)
        #: True while any stuck-bit fault is active (selects the
        #: forced-quantisation branch of the gap handler).
        self.stuck_any = False

    @property
    def label(self) -> str:
        """Campaign tag for traces/reports: joined spec labels (or kinds)."""
        return ",".join(s.label or s.kind.value for s in self.specs)

    # -- per-revolution evaluation ------------------------------------

    def update(self, t: float) -> None:
        """Re-evaluate every loop fault's window at run time ``t``."""
        if t < self._first_onset:
            if self.active:
                self._reset_channels()
            return
        self._reset_channels()
        batched = self.batch is not None
        for s in self.loop_specs:
            if not s.active_at(t):
                continue
            self.active = True
            kind = s.kind
            if kind is FaultKind.CAVITY_FAILURE:
                if batched:
                    self.gap_gain[s.target] *= 1.0 - s.magnitude
                else:
                    self.gap_gain *= 1.0 - s.magnitude
            elif kind is FaultKind.MICROPHONIC_DETUNING:
                phi = self._micro[id(s)].phase_rad(t)
                if batched:
                    self.gap_phase[s.target] += phi
                else:
                    self.gap_phase += phi
            elif kind is FaultKind.DETUNING_TRANSIENT:
                phi = 2.0 * math.pi * s.magnitude * (t - s.onset_time)
                if batched:
                    self.gap_phase[s.target] += phi
                else:
                    self.gap_phase += phi
            elif kind is FaultKind.AMPLIFIER_SATURATION:
                if batched:
                    self.gap_clip[s.target] = min(self.gap_clip[s.target], s.magnitude)
                else:
                    self.gap_clip = min(self.gap_clip, s.magnitude)
            elif kind is FaultKind.DAC_CLIPPING:
                level = s.magnitude * self.dac_full_scale
                if batched:
                    self.gap_clip[s.target] = min(self.gap_clip[s.target], level)
                else:
                    self.gap_clip = min(self.gap_clip, level)
            elif kind is FaultKind.DDS_PHASE_GLITCH:
                if batched:
                    self.gap_phase[s.target] += s.magnitude
                else:
                    self.gap_phase += s.magnitude
            elif kind is FaultKind.ADC_STUCK_BIT:
                bit = 1 << int(s.magnitude)
                if batched:
                    self.stuck_mask[s.target] |= bit
                else:
                    self.stuck_mask |= bit
                self.stuck_any = True

    def _reset_channels(self) -> None:
        self.active = False
        self.stuck_any = False
        if self.batch is None:
            self.gap_gain = 1.0
            self.gap_phase = 0.0
            self.gap_clip = math.inf
            self.stuck_mask = 0
        else:
            self.gap_gain.fill(1.0)
            self.gap_phase.fill(0.0)
            self.gap_clip.fill(math.inf)
            self.stuck_mask.fill(0)


def corrupt_context_images(images: dict, slot: int) -> tuple[dict, tuple]:
    """Corrupt one context-memory entry, deterministically.

    ``slot`` indexes the flattened entry list (PEs in row-major order,
    entries in tick order) modulo its length, so any non-negative
    magnitude is a valid scenario.  The corruption shifts the entry's
    ``node_id`` out of the graph's id space — the executor, which runs
    off the schedule, is oblivious, which is exactly the hazard: only
    the context-image verifier (:func:`repro.cgra.verify.
    verify_context_images`) can catch a bad "bitstream insert".

    Returns the corrupted images (input is not modified) and the
    ``(pe, entry_index)`` that was hit.
    """
    from dataclasses import replace

    from repro.cgra.context import ContextImage

    flat = [
        (pe, i)
        for pe in sorted(images)
        for i in range(len(images[pe].entries))
    ]
    if not flat:
        raise FaultSpecError("cannot corrupt empty context images")
    pe, index = flat[int(slot) % len(flat)]
    corrupted = {
        p: ContextImage(pe=p, entries=list(img.entries)) for p, img in images.items()
    }
    entry = corrupted[pe].entries[index]
    corrupted[pe].entries[index] = replace(entry, node_id=entry.node_id + 10_000)
    return corrupted, (pe, index)
