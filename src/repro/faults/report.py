"""Stability-margin classification of faulted closed-loop runs.

The campaign engine (:mod:`repro.faults.campaign`) runs every scenario as
one lane of a batched bench plus one unfaulted *baseline* lane under the
same configuration.  This module turns the pair of phase traces into a
:class:`StabilityReport`: a per-scenario :class:`Outcome` plus the two
stability margins the campaign CSV exports —

* **settle time** — seconds from the fault's *clearance* (transient
  faults) or *onset* (persistent faults) until the loop's phase error is
  back inside the tolerance band and stays there;
* **max excursion** — the largest deviation of the faulted trace from
  the baseline trace, degrees at h·f_R.

Classification is a pure function of the traces, so byte-identical
traces (pinned across ``--jobs`` and engines by the existing parity
gates) classify identically — which is what makes the campaign CSV
byte-stable.  Shard telemetry (fault labels on
:class:`~repro.obs.report.HilRunReport` and span attributes) travels
through :class:`~repro.obs.snapshot.ObsSnapshot` and the usual
BENCH/JSONL exporters; this module only handles the trace-level verdict.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.faults.spec import FaultSpec

__all__ = [
    "Outcome",
    "StabilityReport",
    "classify_trace",
    "DEFAULT_TOLERANCE_DEG",
    "DEFAULT_UNSTABLE_DEG",
]

#: Phase-error band (degrees at h·f_R) within which the loop counts as
#: recovered.  One ADC code at the 0.9 V operating amplitude is ~0.004°,
#: so 1° is far above quantisation noise yet well inside the 8° jumps
#: the controller is designed to absorb.
DEFAULT_TOLERANCE_DEG = 1.0

#: Excursion (degrees) beyond which the loop is declared unstable: half
#: a bucket at h = 4 (±90° would be the separatrix; 60° keeps a margin
#: for the phase-detector wrap).
DEFAULT_UNSTABLE_DEG = 60.0


class Outcome(enum.IntEnum):
    """Per-scenario verdict (the CSV ``outcome`` code)."""

    #: Phase error returned to the tolerance band and stayed there.
    RECOVERED = 0
    #: Bounded residual error at the end of the run (loop still locked).
    DEGRADED = 1
    #: Excursion beyond the instability threshold or a non-finite trace.
    UNSTABLE = 2
    #: Substrate fault flagged by the static verifier before execution.
    DETECTED = 3
    #: Substrate fault the verifier failed to flag.
    UNDETECTED = 4
    #: The scenario's shard raised even after the single-lane retry.
    FAILED = 5


@dataclass(frozen=True)
class StabilityReport:
    """Stability margins of one classified scenario (plain data)."""

    outcome: Outcome
    #: Seconds from fault clearance (transient) / onset (persistent) to
    #: re-entry into the tolerance band; NaN when never settled or not
    #: applicable (verifier/failed scenarios).
    settle_s: float
    #: Largest |faulted − baseline| phase deviation, degrees; NaN when
    #: not applicable.
    max_excursion_deg: float
    #: |faulted − baseline| at the last record, degrees; NaN when not
    #: applicable.
    final_error_deg: float

    def to_dict(self) -> dict:
        """JSON-friendly representation (obs/report artefacts)."""
        return {
            "outcome": self.outcome.name.lower(),
            "settle_s": self.settle_s,
            "max_excursion_deg": self.max_excursion_deg,
            "final_error_deg": self.final_error_deg,
        }


def classify_trace(
    time: np.ndarray,
    phase_deg: np.ndarray,
    baseline_deg: np.ndarray,
    spec: FaultSpec,
    *,
    tolerance_deg: float = DEFAULT_TOLERANCE_DEG,
    unstable_deg: float = DEFAULT_UNSTABLE_DEG,
) -> StabilityReport:
    """Classify one faulted phase trace against its unfaulted baseline.

    The error signal is the *deviation from baseline* — not the raw
    phase error — so the commanded 8° jump pattern (present in both
    traces) cancels and the verdict isolates the fault's effect.
    """
    time = np.asarray(time, dtype=float)
    err = np.abs(np.asarray(phase_deg, dtype=float) - np.asarray(baseline_deg, dtype=float))
    if time.shape != err.shape:
        raise ValueError(
            f"time {time.shape} and phase {err.shape} shapes differ"
        )
    if err.size == 0:
        return StabilityReport(Outcome.FAILED, math.nan, math.nan, math.nan)
    if not np.all(np.isfinite(err)):
        finite = err[np.isfinite(err)]
        peak = float(finite.max()) if finite.size else math.inf
        return StabilityReport(Outcome.UNSTABLE, math.nan, peak, math.nan)
    peak = float(err.max())
    final = float(err[-1])
    if peak >= unstable_deg:
        return StabilityReport(Outcome.UNSTABLE, math.nan, peak, final)
    # Recovery clock starts when the disturbance stops being applied:
    # clearance for transients, onset for persistent faults (the loop
    # can still absorb a persistent bias, e.g. a stuck low bit).
    ref_time = (
        spec.onset_time + spec.duration if spec.duration is not None else spec.onset_time
    )
    out_of_band = err > tolerance_deg
    if not out_of_band.any():
        return StabilityReport(Outcome.RECOVERED, 0.0, peak, final)
    last_oob = int(np.flatnonzero(out_of_band)[-1])
    if last_oob == err.size - 1:
        # Still outside the band at the end of the run.
        return StabilityReport(Outcome.DEGRADED, math.nan, peak, final)
    settle = max(0.0, float(time[last_oob + 1]) - ref_time)
    return StabilityReport(Outcome.RECOVERED, settle, peak, final)
