"""``repro.faults`` — the fault-injection campaign engine.

Models RF-station and hardware-level faults against the closed loop and
sweeps fault kind × magnitude × onset time as batched/sharded runs,
reporting loop stability margins (see ROADMAP.md and docs/FAULTS.md).

``spec``
    Typed :class:`FaultSpec`/:class:`FaultKind` fault descriptions with
    construction-time validation (:class:`repro.errors.FaultSpecError`)
    and a JSON round trip — plain data by design, so campaign sweeps
    pickle cleanly to worker shards and pass the shard-safety lint
    (:mod:`repro.analysis.shardlint`) that guards this package.
``inject``
    The injectors: :class:`FaultProgram` compiles specs into
    time-indexed perturbation channels the HIL benches consult once per
    revolution (zero overhead when nothing is armed), plus the context-
    image corruptor for substrate faults.
``session``
    Process-wide fault arming for ad-hoc injection on any experiment
    (the runner's ``--faults`` flag); propagates into pool workers as a
    primer.
``engine``
    Scenario execution: loop faults run as lockstep lanes of a batched
    bench; context corruption runs as a detection experiment against
    the static verifier.
``campaign``
    Deterministic campaign grid, sharded dispatch with failure
    containment and single-lane retries, and the all-numeric CSV.
``report``
    Stability-margin classification: recovered / degraded / unstable /
    detected, settle time and max excursion from the phase traces.

Campaign runs lean on the flight recorder: benches tag their spans and
:class:`~repro.obs.report.HilRunReport` entries with the armed fault
label, which travels through :class:`~repro.obs.snapshot.ObsSnapshot`
into ``repro.obs.view`` and the Perfetto export (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    campaign_grid,
    run_campaign,
)
from repro.faults.inject import FaultProgram, corrupt_context_images
from repro.faults.report import Outcome, StabilityReport, classify_trace
from repro.faults.session import (
    arm_session_faults,
    clear_session_faults,
    session_faults,
)
from repro.faults.spec import MAGNITUDE_WINDOWS, FaultKind, FaultSpec

__all__ = [
    "FaultKind",
    "FaultSpec",
    "MAGNITUDE_WINDOWS",
    "FaultProgram",
    "corrupt_context_images",
    "Outcome",
    "StabilityReport",
    "classify_trace",
    "CampaignConfig",
    "CampaignResult",
    "campaign_grid",
    "run_campaign",
    "arm_session_faults",
    "clear_session_faults",
    "session_faults",
]
