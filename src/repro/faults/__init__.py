"""``repro.faults`` — fault-injection campaigns (package skeleton).

Reserved home of the fault-injection campaign engine (see ROADMAP.md):
model RF-station and hardware-level faults against the closed loop and
sweep fault type × magnitude × onset time as batched/sharded runs,
reporting loop stability margins.

Implemented so far:

``spec``
    Typed :class:`FaultSpec`/:class:`FaultKind` fault descriptions with
    construction-time validation (:class:`repro.errors.FaultSpecError`)
    and a JSON round trip — plain data by design, so campaign sweeps
    pickle cleanly to worker shards and pass the shard-safety lint
    (:mod:`repro.analysis.shardlint`) that guards this package.

Planned modules (importing them raises ``ImportError`` until the
corresponding PR lands):

``station``
    RF-station faults: cavity failure with compensation/rematch,
    microphonic detuning spectra, amplifier saturation, detuning
    transients.
``hardware``
    Substrate-level faults the signal chain makes cheap to inject:
    ADC stuck bits, DAC clipping, DDS phase glitches, CGRA context
    corruption (detected by the ``repro.cgra.lint`` verifier).
``campaign``
    Campaign runner sweeping fault type × magnitude × onset time
    through the batched/sharded execution tiers; emits stability-margin
    reports through :mod:`repro.obs`.

Campaign runs are expected to lean on the flight recorder: traces carry
fault onset as span events, and the profiler attributes the recovery
cost per phase (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from repro.faults.spec import MAGNITUDE_WINDOWS, FaultKind, FaultSpec

__all__ = ["FaultKind", "FaultSpec", "MAGNITUDE_WINDOWS"]
