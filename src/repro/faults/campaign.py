"""Fault-campaign planning, sharded execution and classification.

A campaign sweeps fault kind × magnitude × onset time over the Fig. 5a
closed-loop scenario and classifies every run's stability margin.  The
execution plan follows the sweep experiment's two-level fan-out:

* **batch** — loop-fault scenarios pack :data:`CAMPAIGN_CHUNK` per
  shard, one scenario per lane of a batched bench (each spec's
  ``target`` selects its lane, so co-resident scenarios stay bitwise
  isolated — pinned by ``tests/faults/test_inject.py``);
* **process** — shards dispatch over :mod:`repro.parallel`; the shard
  plan, every per-scenario seed
  (:func:`repro.parallel.seeding.shard_seeds` children of
  ``base_seed``) and the classification thresholds are pure functions
  of the :class:`CampaignConfig`, never of ``--jobs``, so the campaign
  CSV is byte-identical across job counts and across the bit-exact
  execution engines.

``CGRA_CONTEXT_CORRUPTION`` scenarios do not run — the engines execute
off the schedule, the context images being the serialization format the
hardware would load — so they dispatch as *detection* tasks instead:
corrupt one context slot, ask the PR-2 static verifier
(:func:`repro.faults.engine.detect_context_corruption`).

Failure containment: a faulted shard never kills the campaign.  Its
lanes are retried one scenario per single-lane shard (deterministic:
the retry plan depends only on *which* scenarios failed); scenarios
failing the retry classify as :class:`~repro.faults.report.Outcome`
``FAILED`` with NaN margins.  Only a baseline failure raises — without
the unfaulted reference trace nothing can be classified.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace

import numpy as np

from repro import obs
from repro.errors import FaultSpecError
from repro.faults.engine import CAMPAIGN_JUMP_DEG, CAMPAIGN_RECORD_EVERY
from repro.faults.inject import LOOP_KINDS
from repro.faults.report import Outcome, StabilityReport, classify_trace
from repro.faults.spec import FaultKind, FaultSpec

__all__ = [
    "CAMPAIGN_CHUNK",
    "MAGNITUDE_LADDER",
    "KIND_CODES",
    "CampaignConfig",
    "CampaignTask",
    "VerifierTask",
    "CampaignShardResult",
    "VerifierResult",
    "CampaignResult",
    "campaign_grid",
    "plan_campaign",
    "run_campaign_shard",
    "run_verifier_shard",
    "run_campaign",
]

#: Scenario lanes per shard (same rationale as ``SWEEP_CHUNK``: the lane
#: grouping is part of the workload, never of the worker count).
CAMPAIGN_CHUNK = 8

#: Curated magnitude ladders, mild → severe, all inside
#: :data:`repro.faults.spec.MAGNITUDE_WINDOWS`.  A campaign subsamples
#: ``magnitudes_per_kind`` rungs, always including the mildest.
MAGNITUDE_LADDER: dict[FaultKind, tuple[float, ...]] = {
    FaultKind.CAVITY_FAILURE: (0.1, 0.3, 0.6, 1.0),  # gradient fraction lost
    FaultKind.MICROPHONIC_DETUNING: (5.0, 15.0, 30.0, 60.0),  # Hz RMS
    FaultKind.AMPLIFIER_SATURATION: (0.5, 0.2, 0.1, 0.04),  # clip level, V
    FaultKind.DETUNING_TRANSIENT: (2.0, 5.0, 10.0, 25.0),  # Hz step
    FaultKind.ADC_STUCK_BIT: (2.0, 5.0, 9.0, 12.0),  # bit index
    FaultKind.DAC_CLIPPING: (0.8, 0.5, 0.2, 0.05),  # fraction of full scale
    FaultKind.DDS_PHASE_GLITCH: (
        math.pi / 16, math.pi / 8, math.pi / 4, math.pi / 2,  # radians
    ),
    FaultKind.CGRA_CONTEXT_CORRUPTION: (0.0, 3.0, 7.0, 11.0),  # context slot
}

#: Stable numeric id of each kind for the all-numeric CSV (declaration
#: order of :class:`FaultKind`).
KIND_CODES: dict[FaultKind, int] = {kind: i for i, kind in enumerate(FaultKind)}

_SCENARIOS = obs.get_registry().counter(
    "faults_scenarios_total", "classified campaign scenarios (by outcome label)"
)


@dataclass(frozen=True)
class CampaignConfig:
    """The campaign grid and run parameters (plain data, hashable)."""

    #: Machine-time duration of every scenario run, seconds.
    duration: float = 0.12
    #: Fault onset times swept per (kind, magnitude), seconds.  The
    #: first falls in a quiet inter-jump stretch; the second straddles
    #: the 0.055 s phase jump, so saturation-type faults (which only
    #: bite when the loop swings) are exercised under load.
    onset_times: tuple[float, ...] = (0.02, 0.05)
    #: Magnitude rungs taken from :data:`MAGNITUDE_LADDER` per kind.
    magnitudes_per_kind: int = 2
    #: Transient length of every loop fault, seconds.
    fault_duration: float = 0.02
    #: Root of the per-scenario seed tree.
    base_seed: int = 2024
    record_every: int = CAMPAIGN_RECORD_EVERY
    jump_deg: float = CAMPAIGN_JUMP_DEG
    chunk: int = CAMPAIGN_CHUNK

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise FaultSpecError(f"duration must be > 0, got {self.duration!r}")
        if not self.onset_times:
            raise FaultSpecError("onset_times must not be empty")
        for onset in self.onset_times:
            if not 0.0 <= onset < self.duration:
                raise FaultSpecError(
                    f"onset {onset!r} outside the run [0, {self.duration})"
                )
        ladder_depth = min(len(l) for l in MAGNITUDE_LADDER.values())
        if not 1 <= self.magnitudes_per_kind <= ladder_depth:
            raise FaultSpecError(
                f"magnitudes_per_kind must be in [1, {ladder_depth}], "
                f"got {self.magnitudes_per_kind}"
            )
        if self.fault_duration <= 0.0:
            raise FaultSpecError(
                f"fault_duration must be > 0, got {self.fault_duration!r}"
            )
        if self.chunk < 1:
            raise FaultSpecError(f"chunk must be >= 1, got {self.chunk}")

    @classmethod
    def quick(cls) -> "CampaignConfig":
        """Smoke-run grid: one mild magnitude, one onset per kind."""
        return cls(duration=0.08, onset_times=(0.02,), magnitudes_per_kind=1)


@dataclass(frozen=True)
class CampaignTask:
    """One shard of loop-fault scenarios (plain data, picklable).

    ``specs[j]`` runs on lane ``j``; ``indices[j]`` is its scenario
    index in the campaign grid.  ``specs`` of ``(None,)`` with indices
    ``(-1,)`` is the unfaulted baseline lane.
    """

    indices: tuple[int, ...]
    specs: tuple[FaultSpec | None, ...]
    duration: float
    jump_deg: float = CAMPAIGN_JUMP_DEG
    record_every: int = CAMPAIGN_RECORD_EVERY


@dataclass(frozen=True)
class VerifierTask:
    """One substrate-fault detection experiment."""

    index: int
    spec: FaultSpec


@dataclass
class CampaignShardResult:
    """Recorded lanes of one campaign shard (plain data, picklable)."""

    indices: tuple[int, ...]
    time: np.ndarray
    #: (n_records, lanes) phase traces, degrees at h·f_R.
    phase_deg: np.ndarray
    n_turns: int
    elapsed_s: float
    deadline_misses: int


@dataclass
class VerifierResult:
    """Outcome of one detection experiment."""

    index: int
    detected: bool
    n_errors: int


def _subsample(ladder: tuple[float, ...], count: int) -> tuple[float, ...]:
    """``count`` evenly spaced rungs of ``ladder``, mildest first."""
    if count == 1:
        return (ladder[0],)
    step = (len(ladder) - 1) / (count - 1)
    return tuple(ladder[round(i * step)] for i in range(count))


def campaign_grid(config: CampaignConfig) -> list[FaultSpec]:
    """The campaign's scenario list, in its one canonical order.

    Kind (declaration order) × magnitude (mild → severe) × onset; the
    substrate kind sweeps only magnitudes (a detection experiment has
    no meaningful onset).  Scenario ``i`` always carries seed child
    ``i`` of ``base_seed``, independent of grid edits elsewhere in the
    campaign — the seed is assigned positionally after the grid is
    fixed.
    """
    from repro.parallel.seeding import shard_seeds

    specs: list[FaultSpec] = []
    for kind in FaultKind:
        magnitudes = _subsample(MAGNITUDE_LADDER[kind], config.magnitudes_per_kind)
        onsets = config.onset_times if kind in LOOP_KINDS else config.onset_times[:1]
        for mi, magnitude in enumerate(magnitudes):
            for ti, onset in enumerate(onsets):
                specs.append(
                    FaultSpec(
                        kind=kind,
                        magnitude=magnitude,
                        onset_time=onset,
                        duration=config.fault_duration,
                        label=f"{kind.value}/m{mi}/t{ti}",
                    )
                )
    seeds = shard_seeds(config.base_seed, len(specs))
    return [replace(spec, seed=seeds[i]) for i, spec in enumerate(specs)]


def plan_campaign(
    config: CampaignConfig,
) -> tuple[list[FaultSpec], list[CampaignTask], list[VerifierTask]]:
    """Build the scenario list and its shard plan.

    Returns ``(scenarios, tasks, verifier_tasks)`` where ``tasks[0]``
    is always the baseline shard.  Pure function of the config.
    """
    scenarios = campaign_grid(config)
    loop_indices = [i for i, s in enumerate(scenarios) if s.kind in LOOP_KINDS]
    tasks = [
        CampaignTask(
            indices=(-1,),
            specs=(None,),
            duration=config.duration,
            jump_deg=config.jump_deg,
            record_every=config.record_every,
        )
    ]
    for start in range(0, len(loop_indices), config.chunk):
        group = loop_indices[start : start + config.chunk]
        tasks.append(
            CampaignTask(
                indices=tuple(group),
                specs=tuple(scenarios[i] for i in group),
                duration=config.duration,
                jump_deg=config.jump_deg,
                record_every=config.record_every,
            )
        )
    verifier_tasks = [
        VerifierTask(index=i, spec=s)
        for i, s in enumerate(scenarios)
        if s.kind not in LOOP_KINDS
    ]
    return scenarios, tasks, verifier_tasks


def run_campaign_shard(task: CampaignTask) -> CampaignShardResult:
    """Run one shard's scenarios as lockstep lanes (worker-side).

    Module-level and lazily importing so it pickles by reference into
    pool workers, like the sweep shard.
    """
    from repro.faults.engine import run_fault_lanes

    t0 = time.perf_counter()
    times, phase, n_turns, misses = run_fault_lanes(
        task.specs,
        task.duration,
        jump_deg=task.jump_deg,
        record_every=task.record_every,
    )
    return CampaignShardResult(
        indices=task.indices,
        time=times,
        phase_deg=phase,
        n_turns=n_turns,
        elapsed_s=time.perf_counter() - t0,
        deadline_misses=misses,
    )


def run_verifier_shard(task: VerifierTask) -> VerifierResult:
    """Run one detection experiment (worker-side)."""
    from repro.faults.engine import detect_context_corruption

    detected, n_errors = detect_context_corruption(task.spec)
    return VerifierResult(index=task.index, detected=detected, n_errors=n_errors)


@dataclass
class CampaignResult:
    """Classified campaign: one row per scenario, grid order."""

    config: CampaignConfig
    scenarios: list[FaultSpec]
    reports: list[StabilityReport]
    #: Baseline (unfaulted) phase trace and its record times.
    baseline_time: np.ndarray
    baseline_phase_deg: np.ndarray
    n_turns: int
    #: Scenario indices whose first shard failed and were retried.
    retried: tuple[int, ...] = ()

    #: CSV schema (all-numeric; NaN for not-applicable margins).
    CSV_HEADER = (
        "scenario,kind_code,magnitude,onset_s,duration_s,seed,"
        "outcome,detected,settle_s,max_excursion_deg,final_error_deg"
    )

    def csv_columns(self) -> list[np.ndarray]:
        """Columns matching :data:`CSV_HEADER`, scenario order."""
        n = len(self.scenarios)
        cols = {
            "scenario": np.arange(n, dtype=float),
            "kind_code": np.array(
                [KIND_CODES[s.kind] for s in self.scenarios], dtype=float
            ),
            "magnitude": np.array([s.magnitude for s in self.scenarios]),
            "onset_s": np.array([s.onset_time for s in self.scenarios]),
            "duration_s": np.array(
                [math.nan if s.duration is None else s.duration for s in self.scenarios]
            ),
            "seed": np.array([float(s.seed or 0) for s in self.scenarios]),
            "outcome": np.array([float(r.outcome) for r in self.reports]),
            "detected": np.array(
                [1.0 if r.outcome is Outcome.DETECTED else 0.0 for r in self.reports]
            ),
            "settle_s": np.array([r.settle_s for r in self.reports]),
            "max_excursion_deg": np.array(
                [r.max_excursion_deg for r in self.reports]
            ),
            "final_error_deg": np.array([r.final_error_deg for r in self.reports]),
        }
        return [cols[name] for name in self.CSV_HEADER.split(",")]

    def outcome_counts(self) -> dict[Outcome, int]:
        """Scenario tally per outcome (summary lines, tests)."""
        counts: dict[Outcome, int] = {}
        for report in self.reports:
            counts[report.outcome] = counts.get(report.outcome, 0) + 1
        return counts

    def summary_lines(self) -> list[str]:
        """Human-readable digest for the runner log."""
        counts = self.outcome_counts()
        tally = ", ".join(
            f"{counts[o]} {o.name.lower()}" for o in Outcome if o in counts
        )
        lines = [
            f"{len(self.scenarios)} scenarios "
            f"({len(self.config.onset_times)} onset(s) x "
            f"{self.config.magnitudes_per_kind} magnitude(s) per kind, "
            f"{self.config.duration * 1e3:.0f} ms runs): {tally}",
        ]
        if self.retried:
            lines.append(
                f"retried {len(self.retried)} scenario(s) single-lane "
                f"after shard failure"
            )
        worst = max(
            (r.max_excursion_deg for r in self.reports if math.isfinite(r.max_excursion_deg)),
            default=math.nan,
        )
        lines.append(f"worst excursion {worst:.2f} deg from baseline")
        return lines


def run_campaign(config: CampaignConfig, pool=None) -> CampaignResult:
    """Plan, dispatch, retry and classify one full campaign.

    ``pool`` is an optional warm :class:`repro.parallel.WorkerPool`;
    without it shards run inline (``--jobs 1`` semantics).  Shard
    failures are contained per the module docstring; only a failed
    baseline raises.
    """
    from repro.parallel import raise_on_failures, run_sharded

    def dispatch(fn, items):
        if pool is not None:
            return pool.map_sharded(fn, items)
        return run_sharded(fn, items, jobs=1)

    scenarios, tasks, verifier_tasks = plan_campaign(config)
    results = dispatch(run_campaign_shard, tasks)
    (baseline,) = raise_on_failures(results[:1], "faults baseline")

    # Collect lane traces; retry lanes of failed shards one-by-one so a
    # single poisoned scenario cannot take down its shard-mates.
    traces: dict[int, np.ndarray] = {}
    failed_indices: list[int] = []
    for task, result in zip(tasks[1:], results[1:]):
        if result.failure is not None:
            failed_indices.extend(task.indices)
            continue
        shard = result.value
        for lane, index in enumerate(shard.indices):
            traces[index] = shard.phase_deg[:, lane]
    retried = tuple(failed_indices)
    if failed_indices:
        retry_tasks = [
            CampaignTask(
                indices=(i,),
                specs=(scenarios[i],),
                duration=config.duration,
                jump_deg=config.jump_deg,
                record_every=config.record_every,
            )
            for i in failed_indices
        ]
        for result in dispatch(run_campaign_shard, retry_tasks):
            if result.failure is not None:
                continue  # stays absent -> FAILED below
            shard = result.value
            traces[shard.indices[0]] = shard.phase_deg[:, 0]

    verdicts: dict[int, VerifierResult] = {}
    for result in dispatch(run_verifier_shard, verifier_tasks):
        if result.failure is None:
            shard = result.value
            verdicts[shard.index] = shard

    nan_report = StabilityReport(Outcome.FAILED, math.nan, math.nan, math.nan)
    reports: list[StabilityReport] = []
    for i, spec in enumerate(scenarios):
        if spec.kind in LOOP_KINDS:
            trace = traces.get(i)
            if trace is None:
                reports.append(nan_report)
            else:
                reports.append(
                    classify_trace(
                        baseline.time, trace, baseline.phase_deg[:, 0], spec
                    )
                )
        else:
            verdict = verdicts.get(i)
            if verdict is None:
                reports.append(nan_report)
            else:
                outcome = Outcome.DETECTED if verdict.detected else Outcome.UNDETECTED
                reports.append(
                    StabilityReport(outcome, math.nan, math.nan, math.nan)
                )
    for report in reports:
        _SCENARIOS.inc(outcome=report.outcome.name.lower())
    return CampaignResult(
        config=config,
        scenarios=scenarios,
        reports=reports,
        baseline_time=baseline.time,
        baseline_phase_deg=baseline.phase_deg,
        n_turns=baseline.n_turns,
        retried=retried,
    )
