"""Execution layer of the fault campaign: scenario runs and detection.

Sits between the injectors (:mod:`repro.faults.inject`, wired into the
HIL benches) and the campaign planner (:mod:`repro.faults.campaign`).
Two execution paths correspond to the two fault families:

* **loop faults** — every kind in
  :data:`repro.faults.inject.LOOP_KINDS` perturbs the closed-loop
  physics or signal chain, so its scenarios *run*:
  :func:`run_fault_lanes` packs one scenario per lane of a
  :class:`~repro.hil.batch.BatchedCavityInTheLoop` (the specs'
  ``target`` indices select their lanes) and returns the recorded phase
  traces for classification;
* **substrate faults** — ``CGRA_CONTEXT_CORRUPTION`` attacks the
  configuration artefact itself, which the execution engines never
  consult (they run off the schedule; the images are the serialization
  format for the hardware).  Its scenarios are therefore *detection*
  experiments: :func:`detect_context_corruption` corrupts one context
  slot of the compiled beam model and asks the static verifier — the
  "bitstream insert" gate of PR 2 — whether it catches the damage.

Everything here is importable inside worker processes (lazy imports,
no module-level handles) and shard-safe.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.errors import FaultSpecError
from repro.faults.inject import LOOP_KINDS, corrupt_context_images
from repro.faults.spec import FaultKind, FaultSpec

__all__ = [
    "run_fault_lanes",
    "detect_context_corruption",
    "CAMPAIGN_JUMP_DEG",
    "CAMPAIGN_RECORD_EVERY",
]

#: Phase-jump drive of every campaign lane, degrees (the Fig. 5a bench
#: stimulus — faults are judged against a loop that is actively
#: working).
CAMPAIGN_JUMP_DEG = 8.0

#: Trace decimation of campaign runs (matches the MDE bench configs).
CAMPAIGN_RECORD_EVERY = 8


def run_fault_lanes(
    specs: tuple[FaultSpec, ...],
    duration: float,
    *,
    jump_deg: float = CAMPAIGN_JUMP_DEG,
    record_every: int = CAMPAIGN_RECORD_EVERY,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Run loop-fault scenarios as lockstep lanes of one batched bench.

    ``specs[i]`` is re-targeted onto lane ``i``; an entry may also be
    ``None`` to reserve an unfaulted lane (the campaign's baseline lane
    travels in its own single-lane task, but parity tests use this).
    Returns ``(time, phase_deg[:, lanes], n_turns, deadline_misses)``.
    """
    from repro.hil.batch import BatchedCavityInTheLoop, BatchHilConfig
    from repro.physics import KNOWN_IONS, SIS18

    lanes = len(specs)
    if lanes == 0:
        raise FaultSpecError("run_fault_lanes needs at least one lane")
    faults = []
    for lane, spec in enumerate(specs):
        if spec is None:
            continue
        if spec.kind not in LOOP_KINDS:
            raise FaultSpecError(
                f"{spec.kind.value} is not a loop fault; dispatch it to "
                f"detect_context_corruption instead"
            )
        faults.append(replace(spec, target=lane))
    config = BatchHilConfig(
        ring=SIS18,
        ion=KNOWN_IONS["14N7+"],
        jump_deg=(float(jump_deg),) * lanes,
        record_every=record_every,
        faults=tuple(faults),
    )
    bench = BatchedCavityInTheLoop(config)
    res = bench.run(duration)
    n_turns = len(res.time) * record_every
    return res.time, res.phase_deg, n_turns, res.deadline.misses


def detect_context_corruption(spec: FaultSpec) -> tuple[bool, int]:
    """Corrupt one context slot of the beam model; ask the verifier.

    Returns ``(detected, n_errors)`` — whether
    :func:`repro.cgra.verify.verify_context_images` rejected the
    corrupted images, and how many errors it reported.  The pristine
    images must verify cleanly (asserted here: a broken toolchain must
    not masquerade as a detection).
    """
    from repro.cgra import verify_context_images
    from repro.cgra.models import compile_beam_model

    if spec.kind is not FaultKind.CGRA_CONTEXT_CORRUPTION:
        raise FaultSpecError(
            f"detect_context_corruption got a {spec.kind.value} spec"
        )
    model = compile_beam_model()
    clean = verify_context_images(model.images, model.graph, model.schedule.fabric)
    if not clean.ok:
        raise FaultSpecError(
            "pristine beam-model images failed verification; refusing to "
            "attribute pre-existing errors to the injected fault"
        )
    corrupted, _ = corrupt_context_images(model.images, int(spec.magnitude))
    report = verify_context_images(corrupted, model.graph, model.schedule.fabric)
    errors = len(report.errors())
    return errors > 0, errors
