"""Typed fault specifications — the injection point of fault campaigns.

A :class:`FaultSpec` is the *plain-data* description of one fault to
inject into a closed-loop run: which physical mechanism
(:class:`FaultKind`), how strong, when, for how long, and against which
target lane/channel.  Campaign runners sweep fault type × magnitude ×
onset time by building lists of specs and dispatching them through the
batched/sharded execution tiers — which is why the spec is deliberately
a frozen dataclass of scalars with a JSON round trip and **no handles**:
it must pickle cleanly to worker processes and pass the shard-safety
lint (:mod:`repro.analysis.shardlint`) that guards every module in this
package.

Validation happens at construction (:class:`repro.errors.FaultSpecError`)
so an inconsistent campaign fails before any shard is dispatched.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import FaultSpecError

__all__ = ["FaultKind", "FaultSpec", "MAGNITUDE_WINDOWS"]


class FaultKind(enum.Enum):
    """Fault mechanisms the campaign engine models (see ROADMAP.md).

    Station-level faults act on the RF/beam physics; hardware-level
    faults act on the signal chain and overlay substrate.
    """

    # RF-station faults.
    CAVITY_FAILURE = "cavity_failure"
    MICROPHONIC_DETUNING = "microphonic_detuning"
    AMPLIFIER_SATURATION = "amplifier_saturation"
    DETUNING_TRANSIENT = "detuning_transient"
    # Hardware/substrate faults.
    ADC_STUCK_BIT = "adc_stuck_bit"
    DAC_CLIPPING = "dac_clipping"
    DDS_PHASE_GLITCH = "dds_phase_glitch"
    CGRA_CONTEXT_CORRUPTION = "cgra_context_corruption"


#: Per-kind magnitude windows ``(low, high, integral)`` — inclusive
#: bounds, ``integral`` marks index-like magnitudes (bit/slot numbers).
MAGNITUDE_WINDOWS: dict[FaultKind, tuple[float, float, bool]] = {
    FaultKind.CAVITY_FAILURE: (0.0, 1.0, False),        # fraction of gradient lost
    FaultKind.MICROPHONIC_DETUNING: (0.0, math.inf, False),  # Hz RMS
    FaultKind.AMPLIFIER_SATURATION: (0.0, math.inf, False),  # clip level, V
    FaultKind.DETUNING_TRANSIENT: (-math.inf, math.inf, False),  # Hz step
    FaultKind.ADC_STUCK_BIT: (0.0, 13.0, True),         # bit index (14-bit ADC)
    FaultKind.DAC_CLIPPING: (0.0, 1.0, False),          # fraction of full scale
    FaultKind.DDS_PHASE_GLITCH: (-math.pi, math.pi, False),  # radians
    FaultKind.CGRA_CONTEXT_CORRUPTION: (0.0, math.inf, True),  # context slot
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: kind, magnitude, timing, target.

    Attributes
    ----------
    kind:
        The fault mechanism.
    magnitude:
        Strength in the kind's native unit; validated against
        :data:`MAGNITUDE_WINDOWS`.
    onset_time:
        Seconds into the run the fault switches on (≥ 0, finite).
    duration:
        Seconds the fault persists; ``None`` means until the end of the
        run (a hard failure rather than a transient).
    target:
        Lane/cavity/channel index the fault applies to (≥ 0).
    seed:
        Seed for stochastic fault realisations (microphonic spectra);
        ``None`` for deterministic kinds.
    label:
        Free-form campaign tag carried into reports.
    """

    kind: FaultKind
    magnitude: float
    onset_time: float
    duration: float | None = None
    target: int = 0
    seed: int | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise FaultSpecError(
                f"kind must be a FaultKind, got {type(self.kind).__name__}"
            )
        if not math.isfinite(self.magnitude):
            raise FaultSpecError(f"magnitude must be finite, got {self.magnitude!r}")
        low, high, integral = MAGNITUDE_WINDOWS[self.kind]
        if not low <= self.magnitude <= high:
            raise FaultSpecError(
                f"{self.kind.value} magnitude {self.magnitude!r} outside "
                f"[{low}, {high}]"
            )
        if integral and self.magnitude != int(self.magnitude):
            raise FaultSpecError(
                f"{self.kind.value} magnitude must be an integer index, "
                f"got {self.magnitude!r}"
            )
        if not (math.isfinite(self.onset_time) and self.onset_time >= 0.0):
            raise FaultSpecError(
                f"onset_time must be finite and >= 0, got {self.onset_time!r}"
            )
        if self.duration is not None and not (
            math.isfinite(self.duration) and self.duration > 0.0
        ):
            raise FaultSpecError(
                f"duration must be finite and > 0 (or None), got {self.duration!r}"
            )
        if not isinstance(self.target, int) or self.target < 0:
            raise FaultSpecError(f"target must be an int >= 0, got {self.target!r}")
        if self.seed is not None and (not isinstance(self.seed, int) or self.seed < 0):
            raise FaultSpecError(f"seed must be an int >= 0 or None, got {self.seed!r}")

    def is_transient(self) -> bool:
        """Whether the fault clears before the end of the run."""
        return self.duration is not None

    def active_at(self, t: float) -> bool:
        """Whether the fault is switched on at run time ``t`` (seconds)."""
        if t < self.onset_time:
            return False
        return self.duration is None or t < self.onset_time + self.duration

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "kind": self.kind.value,
            "magnitude": self.magnitude,
            "onset_time": self.onset_time,
            "duration": self.duration,
            "target": self.target,
            "seed": self.seed,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict` (re-validates)."""
        known = {"kind", "magnitude", "onset_time", "duration", "target",
                 "seed", "label"}
        unknown = set(data) - known
        if unknown:
            raise FaultSpecError(f"unknown FaultSpec fields: {sorted(unknown)}")
        try:
            kind = FaultKind(data["kind"])
        except (KeyError, ValueError) as exc:
            raise FaultSpecError(f"invalid fault kind: {exc}") from exc
        duration = data.get("duration")
        seed = data.get("seed")
        return cls(
            kind=kind,
            magnitude=float(data["magnitude"]),
            onset_time=float(data["onset_time"]),
            duration=None if duration is None else float(duration),
            target=int(data.get("target", 0)),
            seed=None if seed is None else int(seed),
            label=str(data.get("label", "")),
        )

