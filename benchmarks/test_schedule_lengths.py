"""E6 — Section IV-B schedule lengths and maximum revolution frequencies.

Runs the full tool flow (C → SCAR → list scheduler → contexts) for every
configuration of the paper's table and prints measured vs. paper values.
The benchmark time is the tool-flow wall clock (the "reconfiguration in
seconds" quantity).
"""

from repro.experiments.schedule_table import schedule_length_table


def test_schedule_length_table(benchmark, report):
    rows_data = benchmark.pedantic(schedule_length_table, rounds=2, iterations=1)

    rows = [
        "configuration          ticks (paper)   max f_rev (paper)      1 MHz?",
    ]
    for r in rows_data:
        label = f"{r.n_bunches} bunch{'es' if r.n_bunches > 1 else '  '}, " \
                f"{'pipelined    ' if r.pipelined else 'no pipelining'}"
        rows.append(
            f"{label}  {r.schedule_ticks:4d}  ({r.paper_ticks:3d})   "
            f"{r.max_f_rev_hz / 1e6:5.3f} MHz ({r.paper_max_f_rev_hz / 1e6:5.3f})   "
            f"{'yes' if r.meets_1mhz else 'no'}"
        )
    rows.append(
        "shape reproduced: pipelining crosses the 1 MHz line; fewer bunches "
        "shorten the schedule (paper: 128 -> 111 -> 99 -> 93)."
    )
    rows.append(
        "absolute ticks depend on FP-core latency estimates "
        "(OperatorLatencies); see EXPERIMENTS.md E6 for the calibration."
    )
    report(benchmark, "Section IV-B — schedule lengths", rows)

    table = {(r.n_bunches, r.pipelined): r for r in rows_data}
    assert table[(8, True)].schedule_ticks < table[(8, False)].schedule_ticks
    assert table[(1, True)].schedule_ticks < table[(4, True)].schedule_ticks \
        < table[(8, True)].schedule_ticks
    assert not table[(8, False)].meets_1mhz
    assert table[(8, True)].meets_1mhz
