"""Performance benchmarks of the compute kernels (not a paper artefact).

Measures the throughput the optimization guides care about: per-turn cost
of the vectorised multi-particle tracker across ensemble sizes (it should
scale sub-linearly until memory bandwidth binds), and the single-particle
map's per-turn cost that bounds every second-scale bench run.
"""

import numpy as np
import pytest

from repro.physics import SIS18, KNOWN_IONS, MacroParticleTracker, MultiParticleTracker, RFSystem
from repro.physics.distributions import gaussian_bunch
from repro.physics.rf import voltage_for_synchrotron_frequency


@pytest.fixture(scope="module")
def setup():
    ring, ion = SIS18, KNOWN_IONS["14N7+"]
    gamma0 = ring.gamma_from_revolution_frequency(800e3)
    probe = RFSystem(harmonic=4, voltage=1.0)
    rf = probe.with_voltage(
        voltage_for_synchrotron_frequency(ring, ion, probe, gamma0, 1.28e3)
    )
    return ring, ion, rf, gamma0


def test_single_particle_turn_rate(benchmark, setup, report):
    ring, ion, rf, gamma0 = setup
    tracker = MacroParticleTracker(ring, ion, rf)
    state = tracker.initial_state(800e3, delta_t=5e-9)

    def turns():
        for _ in range(2000):
            tracker.step(state, 800e3)

    benchmark.pedantic(turns, rounds=5, iterations=1)
    per_turn = benchmark.stats["mean"] / 2000
    report(benchmark, "perf — single-particle map", [
        f"per-turn cost: {per_turn * 1e6:.2f} us "
        f"({1 / per_turn:,.0f} turns/s)",
        f"a 1.2 s Fig.-5 run = 960k turns = {per_turn * 960e3:.1f} s wall",
    ])
    assert per_turn < 100e-6


@pytest.mark.parametrize("n_particles", [1000, 10000, 100000])
def test_multiparticle_throughput(benchmark, setup, report, n_particles):
    ring, ion, rf, gamma0 = setup
    rng = np.random.default_rng(1)
    dt, dg = gaussian_bunch(ring, ion, rf, gamma0, 12e-9, n_particles, rng)
    tracker = MultiParticleTracker(ring, ion, rf, dt, dg, gamma0)

    def turns():
        for _ in range(50):
            tracker.step(800e3)

    benchmark.pedantic(turns, rounds=3, iterations=1)
    per_turn = benchmark.stats["mean"] / 50
    particles_per_s = n_particles / per_turn
    report(benchmark, f"perf — multiparticle N={n_particles}", [
        f"per-turn cost: {per_turn * 1e3:.3f} ms "
        f"({particles_per_s / 1e6:.1f} M particle-turns/s)",
    ])
    # Vectorisation pays: at 100k particles we exceed 20M particle-turns/s.
    if n_particles == 100000:
        assert particles_per_s > 2e7
