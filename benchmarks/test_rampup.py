"""E9 — the ramp-up extension (Section VI outlook).

Tracks a bunch through a 600 → 800 kHz acceleration ramp with a per-turn
synchronous-phase programme, and checks the shrinking real-time budget.
"""

from repro.experiments.rampup import RampUpScenario, rampup_run
from repro.physics import SIS18, KNOWN_IONS


def test_rampup(benchmark, report):
    scenario = RampUpScenario(
        ring=SIS18,
        ion=KNOWN_IONS["14N7+"],
        harmonic=4,
        f_start=600e3,
        f_end=800e3,
        duration=0.1,
        voltage_start=6e3,
        voltage_end=6e3,
        initial_delta_t=15e-9,
    )
    result = benchmark.pedantic(
        rampup_run, args=(scenario,), kwargs={"record_every": 64},
        rounds=1, iterations=1,
    )

    rows = [
        f"ramp: {scenario.f_start / 1e3:.0f} -> {scenario.f_end / 1e3:.0f} kHz "
        f"over {scenario.duration * 1e3:.0f} ms at {scenario.voltage_start / 1e3:.0f} kV",
        f"synchronous phase range: [{result.synchronous_phase_deg.min():.2f}, "
        f"{result.synchronous_phase_deg.max():.2f}] deg",
        f"reference follows frequency programme: final |gamma error| = "
        f"{result.final_gamma_error:.2e}",
        f"bunch stays captured: max |RF phase| = "
        f"{result.max_abs_bunch_phase_deg:.1f} deg",
        f"real-time budget through the ramp: min slack "
        f"{result.deadline.min_slack:.1f} ticks (tightest at ramp top), "
        f"met = {result.deadline.met}",
        'paper Section VI: "the challenge is to emulate the acceleration '
        'phase with variable RF frequencies and amplitudes" — demonstrated.',
    ]
    report(benchmark, "E9 — ramp-up case", rows)

    assert result.deadline.met
    assert result.final_gamma_error < 1e-4
    assert result.max_abs_bunch_phase_deg < 90.0
