"""E7 — the feasibility argument: software jitter vs. CGRA determinism.

Quantifies why the paper rejected a pure-software simulator: the
jitter-induced *false beam phase* of a CPU implementation is comparable
to the oscillations being emulated, while the CGRA's output timing is a
constant of the static schedule.
"""

from repro.experiments.jitter_study import jitter_comparison


def test_jitter_comparison(benchmark, report):
    rows_data = benchmark.pedantic(
        jitter_comparison, kwargs={"n_samples": 200_000}, rounds=1, iterations=1
    )

    rows = [
        "implementation     f_rev      p50        p99.9      miss-rate  "
        "false phase (rms / worst)",
    ]
    for r in rows_data:
        rows.append(
            f"{r.implementation:18s} {r.f_rev_hz / 1e3:5.0f} kHz "
            f"{r.latency.p50 * 1e9:7.1f} ns {r.latency.p999 * 1e9:9.1f} ns "
            f"{r.deadline_miss_rate:9.2e}  "
            f"{r.false_phase_rms_deg:7.2f} / {r.false_phase_worst_deg:8.2f} deg"
        )
    rows.append(
        "paper's conclusion reproduced: software 'could be fast enough, but "
        "the time jitter ... was too high'; the CGRA write tick is constant."
    )
    report(benchmark, "E7 — timing jitter: software vs. CGRA", rows)

    softwares = [r for r in rows_data if "software" in r.implementation]
    cgras = [r for r in rows_data if "CGRA" in r.implementation]
    for sw, hw in zip(softwares, cgras):
        assert hw.false_phase_rms_deg < 0.1 * sw.false_phase_rms_deg
        assert hw.latency.std <= 1e-20
