"""Ablation A6 — automatic modulo scheduling vs. manual factor-2 pipelining.

The paper pipelines the loop by hand because its tool flow lacks
software pipelining.  This ablation runs a full iterative modulo
scheduler over the same dataflow graphs and reports the initiation
interval (II): the tick budget one revolution actually needs once
iterations overlap freely.

Findings encoded in the assertions:

1. on the *unsplit* model the long Eq. 2→6 recurrence (RecMII ≈ 73
   ticks) caps what any scheduler can do — for 8 bunches manual
   splitting beats pure modulo scheduling;
2. the manual barrier *cuts that recurrence* (RecMII → 3), and modulo
   scheduling on top of the split graph dominates everything: the
   remaining bound is the single SensorAccess port (ResMII), i.e. pure
   IO pressure — the true architectural limit of the design.
"""

from repro.cgra.fabric import CgraConfig, CgraFabric
from repro.cgra.models import compile_beam_model
from repro.cgra.modulo import ModuloScheduler


def _sweep():
    fabric = CgraFabric(CgraConfig())
    ms = ModuloScheduler(fabric)
    table = {}
    for n_bunches in (1, 4, 8):
        manual = compile_beam_model(n_bunches=n_bunches, pipelined=True)
        plain = compile_beam_model(n_bunches=n_bunches, pipelined=False)
        mod_plain = ms.schedule(plain.graph)
        mod_split = ms.schedule(manual.graph)
        table[n_bunches] = {
            "manual_ticks": manual.schedule_length,
            "modulo_plain": mod_plain,
            "modulo_split": mod_split,
        }
    return table


def test_modulo_vs_manual_pipelining(benchmark, report):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        "bunches   manual ticks   modulo II (plain)   modulo II (split)   "
        "ResMII  RecMII(split)   max f_rev (split+modulo)",
    ]
    for n, entry in sorted(table.items()):
        ms = entry["modulo_split"]
        mp = entry["modulo_plain"]
        rows.append(
            f"{n:6d}   {entry['manual_ticks']:12d}   {mp.ii:17d}   {ms.ii:17d}   "
            f"{ms.res_mii:6d}  {ms.rec_mii:13d}   {ms.max_revolution_frequency() / 1e6:6.3f} MHz"
        )
    rows.append(
        "the manual barrier cuts the Eq. 2->6 recurrence; modulo scheduling "
        "then runs into the SensorAccess port (ResMII) — the architectural "
        "limit. Automatic software pipelining would buy the paper's bench "
        f"{table[8]['manual_ticks'] / table[8]['modulo_split'].ii:.2f}x more "
        "revolution-frequency headroom at 8 bunches."
    )
    report(benchmark, "A6 — modulo scheduling vs. manual pipelining", rows)

    for n, entry in table.items():
        assert entry["modulo_split"].ii <= entry["manual_ticks"]
    # The recurrence dominates the unsplit 8-bunch model.
    assert table[8]["modulo_plain"].rec_mii > 50
    assert table[8]["modulo_split"].rec_mii < 10
    # IO pressure is the split model's binding constraint at 8 bunches.
    e8 = table[8]["modulo_split"]
    assert e8.res_mii >= e8.rec_mii
