"""Ablation A3 — single vs. double precision on the CGRA.

The overlay uses single-precision FP cores; this ablation measures the
numeric drift that choice costs on the Fig. 5 observable (working in
Δ-quantities is what keeps it small — exactly why the paper's model
tracks Δγ/Δt instead of absolute energies and times).
"""

import numpy as np

from repro.experiments.mde import bench_config
from repro.hil.simulator import CavityInTheLoop


def _run(precision: str):
    sim = CavityInTheLoop(bench_config(engine="cgra", record_every=1,
                                       precision=precision, jump_start_time=0.002))
    return sim.run(0.02)


def test_precision_ablation(benchmark, report):
    r32 = benchmark.pedantic(_run, args=("single",), rounds=1, iterations=1)
    r64 = _run("double")

    diff = np.abs(r32.phase_deg - r64.phase_deg)
    signal_pp = r64.phase_deg.max() - r64.phase_deg.min()
    rows = [
        "20 ms closed-loop window, CGRA engine, one jump:",
        f"  signal peak-to-peak          : {signal_pp:8.2f} deg",
        f"  |single - double| max        : {diff.max():8.4f} deg",
        f"  |single - double| rms        : {np.sqrt((diff ** 2).mean()):8.4f} deg",
        f"  relative worst-case error    : {diff.max() / signal_pp * 100:8.3f} %",
        "single precision suffices because the model tracks Delta quantities "
        "(paper Section IV-A), keeping all magnitudes near unity.",
    ]
    report(benchmark, "A3 — single vs. double precision", rows)

    assert diff.max() < 0.05 * signal_pp
