"""Ablation A2 — fabric geometry.

The framework "is agnostic to the CGRA configuration, allowing an
arbitrary number of PEs (e.g. 3x3 or 5x5) and any interconnect
structure".  This ablation quantifies what the geometry buys: schedule
length of the 8-bunch pipelined model across grid sizes, torus wrap-
around, and heavy-core density.
"""

from repro.cgra.fabric import CgraConfig
from repro.cgra.models import compile_beam_model


def _sweep():
    results = {}
    for rows_, torus, heavy in [
        (3, False, 0.5),
        (4, False, 0.5),
        (5, False, 0.5),
        (6, False, 0.5),
        (5, True, 0.5),
        (5, False, 0.25),
        (5, False, 1.0),
    ]:
        cfg = CgraConfig(rows=rows_, cols=rows_, torus=torus, heavy_pe_fraction=heavy)
        m = compile_beam_model(n_bunches=8, pipelined=True, config=cfg)
        results[(rows_, torus, heavy)] = m.schedule_length
    return results


def test_fabric_sweep(benchmark, report):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = ["fabric          torus  heavy-PE fraction   ticks (8 bunches, pipelined)"]
    for (n, torus, heavy), ticks in sorted(table.items()):
        rows.append(
            f"{n}x{n} ({n * n:2d} PEs)   {'yes' if torus else 'no ':4s} "
            f"{heavy:17.2f}   {ticks:6d}"
        )
    rows.append(
        "diminishing returns beyond 5x5: the schedule is bounded by the "
        "critical path and the single SensorAccess port, not PE count."
    )
    report(benchmark, "A2 — fabric geometry", rows)

    # More PEs never hurt; the 3x3 fabric is the most constrained.
    assert table[(3, False, 0.5)] >= table[(5, False, 0.5)]
    assert table[(6, False, 0.5)] <= table[(4, False, 0.5)]
    # Denser heavy cores help or tie (more div/sqrt sites).
    assert table[(5, False, 1.0)] <= table[(5, False, 0.25)]
