"""Ablation A4 — ADC resolution.

The FMC151 provides 14 bits; this ablation sweeps the ADC resolution to
show how much headroom the design has (and where the emulation would
start to degrade), measured on the Fig. 5 phase observable.
"""

import numpy as np

from repro.experiments.mde import bench_config
from repro.hil.simulator import CavityInTheLoop, HilConfig
from repro.signal.adc import ADC


def _phase_error(bits: int) -> float:
    """Worst phase deviation vs. the unquantised run over 10 ms."""
    base_cfg = bench_config(record_every=1, jump_start_time=0.002,
                            quantize_adc=False)
    ref = CavityInTheLoop(base_cfg).run(0.01)

    cfg = bench_config(record_every=1, jump_start_time=0.002, quantize_adc=True)
    sim = CavityInTheLoop(cfg)
    # Swap in a coarser converter on the fast path.
    adc = ADC(bits=bits, vpp=2.0)
    sim._adc_lsb = adc.lsb
    sim._adc_code_min = adc.code_min
    sim._adc_code_max = adc.code_max
    res = sim.run(0.01)
    return float(np.abs(res.phase_deg - ref.phase_deg).max())


def test_adc_resolution_sweep(benchmark, report):
    bits_list = [6, 8, 10, 14]

    def sweep():
        return {b: _phase_error(b) for b in bits_list}

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = ["ADC bits   worst phase deviation vs. ideal (deg)"]
    for b in bits_list:
        marker = "  <- FMC151" if b == 14 else ""
        rows.append(f"{b:8d}   {errors[b]:10.4f}{marker}")
    rows.append(
        "the 14-bit FMC151 leaves the emulated dynamics essentially "
        "unperturbed; degradation appears below ~8 bits."
    )
    report(benchmark, "A4 — ADC resolution", rows)

    assert errors[14] < 0.3
    assert errors[6] > errors[14]
