"""E1 — Fig. 1: sample forces that influence a bunch.

Regenerates the gap-voltage curve and the per-particle energy kicks for
the paper's stationary-bucket illustration, and times the generator.
"""

from repro.experiments.fig1 import fig1_forces_data
from repro.physics import SIS18, KNOWN_IONS, RFSystem


def test_fig1_forces(benchmark, report):
    ring, ion = SIS18, KNOWN_IONS["14N7+"]
    rf = RFSystem(harmonic=4, voltage=5e3)

    data = benchmark(fig1_forces_data, ring, ion, rf, 800e3)

    rows = [
        f"gap voltage over one RF period: {len(data.time)} points, "
        f"peak {data.voltage.max():.0f} V",
    ]
    labels = ["early (dt<0)", "reference", "late (dt>0)"]
    for label, dt, v, kick in zip(
        labels, data.particle_delta_t, data.particle_voltage,
        data.particle_delta_gamma_kick,
    ):
        rows.append(
            f"{label:>14}: dt={dt * 1e9:+7.2f} ns  V={v:+9.1f} V  "
            f"dGamma/turn={kick:+.3e}"
        )
    rows.append("paper shape: late particle accelerated, early decelerated — "
                + ("OK" if data.particle_delta_gamma_kick[2] > 0 >
                   data.particle_delta_gamma_kick[0] else "MISMATCH"))
    report(benchmark, "Fig. 1 — forces on a bunch", rows)

    assert data.particle_delta_gamma_kick[2] > 0 > data.particle_delta_gamma_kick[0]
