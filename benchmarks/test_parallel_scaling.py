"""Multi-process scaling benchmark with a built-in parity gate.

Runs the sharded jump-amplitude sweep (4 shards x 8 lockstep lanes)
serially and across warm worker pools of 2 and 4 processes, and writes
``BENCH_parallel.json`` (runs/sec plus scaling efficiency per job
count, and the shared-memory vs pickle result-transport comparison) —
both under ``benchmarks/results/`` and at the repo root, where the
committed copy lives.  Before any timing counts, every pooled run is
proven bit-exact against the serial shards — the shard plan is a pure
function of the workload, so a speedup can never come from a workload
change.

Run directly (timing is manual, no pytest-benchmark plugin needed):

.. code-block:: bash

    PYTHONPATH=src python -m pytest -q benchmarks/test_parallel_scaling.py

Targets (ISSUE: perf_opt): >= 1.7x at --jobs 2 and >= 3x at --jobs 4
over --jobs 1.  The thresholds are asserted only when the machine
actually exposes that many cores (``os.sched_getaffinity``) — a
single-core container cannot speed anything up, but it still runs the
full parity gate and reports honest numbers.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.sweep import SWEEP_CHUNK, plan_sweep, run_sweep_shard
from repro.obs.export import write_bench_json
from repro.parallel import WorkerPool, raise_on_failures, run_sharded
from repro.parallel.shm import shm_available

pytestmark = pytest.mark.bench

_RESULTS = Path(__file__).parent / "results"
#: The committed benchmark record lives at the repo root (CI uploads it
#: from every run; regressions diff against the committed copy).
_ROOT = Path(__file__).parent.parent
#: 32 scenario runs -> 4 shards of SWEEP_CHUNK lanes.
N_SCENARIOS = 32
#: Machine-time duration per scenario; 0.01 s = 8000 turns per lane,
#: ~1.5 s of work per shard — long enough to dominate dispatch overhead,
#: short enough for CI.
DURATION = 0.01
JOB_COUNTS = (1, 2, 4)


def _tasks(duration: float = DURATION):
    amps = np.linspace(2.0, 12.0, N_SCENARIOS)
    # keep_trace: the parity gate compares raw phase traces bit-for-bit
    # (DURATION is too short for the settled fig5 metrics).
    return plan_sweep(amps, duration, keep_trace=True)


def _run_serial(tasks):
    return raise_on_failures(run_sharded(run_sweep_shard, tasks, jobs=1), "sweep")


#: Transport benchmark: result-dominated shards.  Each returns ~4 MiB of
#: trace data for trivial compute, so the timing isolates exactly what
#: the zero-copy transport changes (worker-side serialisation + pipe).
TRANSPORT_ITEMS = 8
TRANSPORT_ELEMS = 512 * 1024  # float64 -> 4 MiB per shard


def _bulk_result(seed):
    t = np.arange(TRANSPORT_ELEMS, dtype=np.float64)
    return {"trace": np.sin(1e-4 * t * (1 + seed)), "seed": seed}


def _time_transport(pool, transports):
    elapsed = {}
    for transport in transports:
        pool._transport = transport  # same warm workers for both modes
        # Full-size warm dispatch: the first shm dispatch pays one-time
        # costs (resource-tracker spawn, /dev/shm path setup) that a
        # steady-state comparison must not charge to either side.
        raise_on_failures(
            pool.map_sharded(_bulk_result, range(TRANSPORT_ITEMS)), "warmup"
        )
        t0 = time.perf_counter()
        shards = raise_on_failures(
            pool.map_sharded(_bulk_result, range(TRANSPORT_ITEMS)), "transport"
        )
        elapsed[transport] = time.perf_counter() - t0
        # Parity: the transport moves bytes, it never re-encodes them.
        for i, value in enumerate(shards):
            assert value["seed"] == i
            assert np.array_equal(value["trace"], _bulk_result(i)["trace"])
    return elapsed


def test_parallel_scaling_and_parity():
    tasks = _tasks()
    warmup = _tasks(duration=0.0005)

    # -- serial reference (also the jobs=1 timing baseline) ------------
    _run_serial(warmup)  # pay imports + compile once, outside the clock
    t0 = time.perf_counter()
    reference = _run_serial(tasks)
    elapsed = {1: time.perf_counter() - t0}

    # -- pooled runs: parity gate first, then the timed dispatch -------
    for jobs in JOB_COUNTS[1:]:
        with WorkerPool(jobs=jobs) as pool:
            # Warm every worker (imports, compile-cache priming) so the
            # timed dispatch measures steady-state throughput.
            raise_on_failures(pool.map_sharded(run_sweep_shard, warmup), "warmup")
            t0 = time.perf_counter()
            shards = raise_on_failures(pool.map_sharded(run_sweep_shard, tasks), "sweep")
            elapsed[jobs] = time.perf_counter() - t0
        assert len(shards) == len(reference)
        for got, want in zip(shards, reference):
            assert got.offset == want.offset, "merge order regression"
            assert np.array_equal(got.amps, want.amps)
            assert np.array_equal(got.phase_deg, want.phase_deg), (
                f"jobs={jobs} shard {got.offset}: phase trace diverged "
                "from the serial run — parity gate failed"
            )

    # -- report --------------------------------------------------------
    cores = len(os.sched_getaffinity(0))
    n_turns = reference[0].n_turns
    print(f"\n=== parallel sweep scaling ({N_SCENARIOS} runs, "
          f"{len(tasks)} shards of {SWEEP_CHUNK}, {cores} cores) ===")
    records = []
    for jobs in JOB_COUNTS:
        t = elapsed[jobs]
        speedup = elapsed[1] / t
        efficiency = speedup / jobs
        runs_per_s = N_SCENARIOS / t
        print(f"jobs={jobs}: {t:6.2f}s  {runs_per_s:6.2f} runs/s  "
              f"{speedup:.2f}x  efficiency {efficiency:.2f}")
        records.append(
            {
                "name": f"parallel/sweep_jobs{jobs}",
                "stats": {"mean": t / N_SCENARIOS, "rounds": N_SCENARIOS},
                "extra_info": {
                    "jobs": jobs,
                    "runs_per_second": runs_per_s,
                    "lane_iterations_per_second": N_SCENARIOS * n_turns / t,
                    "speedup_vs_jobs1": speedup,
                    "scaling_efficiency": efficiency,
                    "cores_available": cores,
                    "threshold_enforced": cores >= jobs,
                },
            }
        )
    # -- result transport: shared memory vs pickle at jobs=2 -----------
    transport_elapsed = None
    if shm_available():
        with WorkerPool(jobs=2, primers=()) as pool:
            transport_elapsed = _time_transport(pool, ("pickle", "shm"))
        reduction = transport_elapsed["pickle"] / transport_elapsed["shm"]
        mib = TRANSPORT_ITEMS * TRANSPORT_ELEMS * 8 / 2**20
        print(f"transport ({mib:.0f} MiB of results, jobs=2): "
              f"pickle {transport_elapsed['pickle']:.3f}s  "
              f"shm {transport_elapsed['shm']:.3f}s  ({reduction:.2f}x)")
        records.append(
            {
                "name": "parallel/transport_shm_jobs2",
                "stats": {
                    "mean": transport_elapsed["shm"] / TRANSPORT_ITEMS,
                    "rounds": TRANSPORT_ITEMS,
                },
                "extra_info": {
                    "pickle_seconds": transport_elapsed["pickle"],
                    "shm_seconds": transport_elapsed["shm"],
                    "merge_time_reduction": reduction,
                    "result_mib": mib,
                    "cores_available": cores,
                    "threshold_enforced": cores >= 2,
                },
            }
        )

    _RESULTS.mkdir(exist_ok=True)
    write_bench_json(_RESULTS / "BENCH_parallel.json", records)
    write_bench_json(_ROOT / "BENCH_parallel.json", records)

    # -- scaling targets, where the hardware can express them ----------
    if cores >= 2:
        speedup2 = elapsed[1] / elapsed[2]
        assert speedup2 >= 1.7, f"jobs=2 speedup {speedup2:.2f}x below 1.7x target"
        if transport_elapsed is not None:
            assert transport_elapsed["shm"] < transport_elapsed["pickle"], (
                "shared-memory transport should beat pickling on "
                "result-dominated shards"
            )
    if cores >= 4:
        speedup4 = elapsed[1] / elapsed[4]
        assert speedup4 >= 3.0, f"jobs=4 speedup {speedup4:.2f}x below 3x target"
