"""Engine throughput benchmark with a built-in parity gate.

Measures the four execution tiers on the shipped kernels — interpreted,
compiled, batched-compiled with 64 lockstep lanes, and the
certificate-driven vector tier — and writes ``BENCH_engine.json`` (both
under ``benchmarks/results/`` and at the repo root, where the committed
copy lives).  The same run first proves the compiled and vector engines
bit-exact against the interpreter, so a reported speedup can never come
from a semantics change.

Run directly (no pytest-benchmark plugin needed — timing is manual so
parity + perf land in one process):

.. code-block:: bash

    PYTHONPATH=src python -m pytest -q benchmarks/test_engine_parity_perf.py

Two kinds of gate:

* **Unconditional** — the parity gate (bit-exactness hard-fails
  anywhere) and the expected-winner gate: the autotune cost model under
  a pinned :data:`REFERENCE_PROFILE` must pick the engine each kernel
  is actually fastest on (compiled for the sequential beam recurrence,
  vector for the chunkable monitor kernel) at B = 1 and B = 64.  This
  replaces the old blanket "vector beats compiled" floor, which the
  beam kernel legitimately fails — the planner's job is to route around
  that, not to pretend it away.
* **Core-gated** (>= 2 usable cores) — wall-clock floors: compiled
  >= 10x interpreted, batched >= 50x aggregate at B = 64, vector >= 3x
  compiled on the monitor kernel, and ``engine="auto"`` within 5% of
  the best static tier on every benchmarked kernel.  A loaded
  single-core container cannot express these honestly, but it still
  runs the full gates and reports real numbers.
"""

from __future__ import annotations

import math
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cgra import (
    BatchSensorBus,
    BatchedCgraExecutor,
    CgraExecutor,
    MachineProfile,
    SensorBus,
    compile_beam_model,
    compile_monitor_model,
    plan_for,
)
from repro.cgra.engine import compile_program
from repro.cgra.sensor import (
    ACTUATOR_DELTA_T,
    ACTUATOR_MONITOR,
    SENSOR_GAP_BUFFER,
    SENSOR_PERIOD,
    SENSOR_REF_BUFFER,
)
from repro.obs.export import write_bench_json
from repro.physics import KNOWN_IONS, SIS18

pytestmark = pytest.mark.bench

_RESULTS = Path(__file__).parent / "results"
#: The committed benchmark record lives at the repo root (CI uploads it
#: from every run; regressions diff against the committed copy).
_ROOT = Path(__file__).parent.parent
BATCH = 64
#: Vector-tier timings run well past this so every measurement exercises
#: full-size chunks (the acceptance floor is T >= 256).
VECTOR_T = 256

#: A pinned mid-range machine profile: the expected-winner gate asserts
#: against the cost model's decision under *this* profile, which is a
#: pure function — true on every machine regardless of load (the same
#: profile anchors tests/cgra/test_autotune.py).
REFERENCE_PROFILE = MachineProfile(
    scalar_op_ns=400.0,
    array_op_ns=450.0,
    array_elem_ns=1.0,
    call_ns=80.0,
    chunk_elems=32768,
)


def _params(model):
    gamma0 = SIS18.gamma_from_revolution_frequency(800e3)
    return model.default_params(
        gamma_r0=gamma0,
        q_over_mc2=KNOWN_IONS["14N7+"].gamma_gain_per_volt(),
        orbit_length=SIS18.circumference,
        alpha_c=SIS18.alpha_c,
        v_scale=4862.0,
        v_scale_ref=4 * 4862.0,
        f_sample=250e6,
        harmonic=4,
    )


def _monitor_params():
    gamma0 = SIS18.gamma_from_revolution_frequency(800e3)
    return {
        "GAMMA_R0": gamma0,
        "L_R": SIS18.circumference,
        "ALPHA_C": SIS18.alpha_c,
        "F_SYNC": 3.1e3,
        "T_NOM": 1.25e-6,
        "K_SMOOTH": 0.7,
        "LIMIT": 0.5,
    }


def _scalar_bus():
    bus = SensorBus()
    bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
    bus.register_addr_reader(
        SENSOR_REF_BUFFER, lambda a: math.sin(2 * math.pi * 800e3 * a / 250e6)
    )
    bus.register_addr_reader(
        SENSOR_GAP_BUFFER, lambda a: math.sin(2 * math.pi * 3.2e6 * a / 250e6 + 0.14)
    )
    bus.register_writer(ACTUATOR_DELTA_T, lambda v: None)
    return bus


def _monitor_bus():
    bus = SensorBus()
    bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
    bus.register_writer(ACTUATOR_MONITOR, lambda v: None)
    return bus


def _batch_bus():
    bus = BatchSensorBus(batch=BATCH)
    bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
    bus.register_addr_reader(
        SENSOR_REF_BUFFER, lambda a: np.sin(2 * np.pi * 800e3 * a / 250e6)
    )
    bus.register_addr_reader(
        SENSOR_GAP_BUFFER, lambda a: np.sin(2 * np.pi * 3.2e6 * a / 250e6 + 0.14)
    )
    bus.register_writer(ACTUATOR_DELTA_T, lambda v: None)
    return bus


def _batch_monitor_bus():
    bus = BatchSensorBus(batch=BATCH)
    bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
    bus.register_writer(ACTUATOR_MONITOR, lambda v: None)
    return bus


def _time_run(executor, n_iterations: int) -> float:
    """Seconds per iteration for one bulk run."""
    t0 = time.perf_counter()
    executor.run(n_iterations)
    return (time.perf_counter() - t0) / n_iterations


def test_engine_parity_and_throughput():
    model = compile_beam_model(n_bunches=1, pipelined=True)
    params = _params(model)
    monitor = compile_monitor_model()
    mparams = _monitor_params()

    # -- parity gate: speedups below are only meaningful if bit-exact --
    # Hard-fails everywhere; never gated on core count.
    ex_i = CgraExecutor(model.schedule, _scalar_bus(), params, engine="interpreted")
    ex_c = CgraExecutor(model.schedule, _scalar_bus(), params, engine="compiled")
    for _ in range(30):
        ex_i.run_iteration()
        ex_c.run_iteration()
        assert ex_c.registers == ex_i.registers, "parity regression"
    # Vector tier: bulk runs so the chunked path (not the per-iteration
    # compiled fallback) is what gets compared.
    ex_v = CgraExecutor(model.schedule, _scalar_bus(), params, engine="vector")
    ex_i.run(VECTOR_T - 30)
    ex_v.run(VECTOR_T)
    assert ex_v.registers == ex_i.registers, "vector parity regression (beam)"
    mon_i = CgraExecutor(monitor.schedule, _monitor_bus(), mparams,
                         engine="interpreted")
    mon_v = CgraExecutor(monitor.schedule, _monitor_bus(), mparams,
                         engine="vector")
    mon_i.run(VECTOR_T)
    mon_v.run(VECTOR_T)
    assert mon_v.registers == mon_i.registers, "vector parity regression (monitor)"

    # -- throughput, warmed executors, one bulk run each ---------------
    interp = CgraExecutor(model.schedule, _scalar_bus(), params, engine="interpreted")
    interp.run(50)  # warmup
    t_interp = _time_run(interp, 1500)

    comp = CgraExecutor(model.schedule, _scalar_bus(), params, engine="compiled")
    comp.run(200)
    t_comp = _time_run(comp, 10_000)

    vec = CgraExecutor(model.schedule, _scalar_bus(), params, engine="vector")
    vec.run(512)
    t_vec = _time_run(vec, 16_384)

    mon_comp = CgraExecutor(monitor.schedule, _monitor_bus(), mparams,
                            engine="compiled")
    mon_comp.run(200)
    t_mon_comp = _time_run(mon_comp, 20_000)

    mon_vec = CgraExecutor(monitor.schedule, _monitor_bus(), mparams,
                           engine="vector")
    mon_vec.run(512)
    t_mon_vec = _time_run(mon_vec, 65_536)

    batched = BatchedCgraExecutor(model.schedule, _batch_bus(), params)
    batched.run(100)
    t_batch_iter = _time_run(batched, 2000)
    t_lane = t_batch_iter / BATCH

    mon_batch_c = BatchedCgraExecutor(monitor.schedule, _batch_monitor_bus(),
                                      mparams, engine="compiled")
    mon_batch_c.run(100)
    t_mon_batch_c = _time_run(mon_batch_c, 4000)

    mon_batch_v = BatchedCgraExecutor(monitor.schedule, _batch_monitor_bus(),
                                      mparams, engine="vector")
    mon_batch_v.run(512)
    t_mon_batch_v = _time_run(mon_batch_v, 16_384)

    # -- the adaptive tier, on every kernel at B in {1, 64} ------------
    auto = CgraExecutor(model.schedule, _scalar_bus(), params, engine="auto")
    auto.run(512)
    t_auto = _time_run(auto, 16_384)

    mon_auto = CgraExecutor(monitor.schedule, _monitor_bus(), mparams,
                            engine="auto")
    mon_auto.run(512)
    t_mon_auto = _time_run(mon_auto, 65_536)

    batched_auto = BatchedCgraExecutor(model.schedule, _batch_bus(), params,
                                       engine="auto")
    batched_auto.run(100)
    t_batch_auto = _time_run(batched_auto, 2000)

    mon_batch_auto = BatchedCgraExecutor(monitor.schedule, _batch_monitor_bus(),
                                         mparams, engine="auto")
    mon_batch_auto.run(512)
    t_mon_batch_auto = _time_run(mon_batch_auto, 16_384)

    #: auto wall-clock over the best *measured* static tier, per kernel.
    auto_vs_best = {
        "beam_b1": t_auto / min(t_comp, t_vec),
        "monitor_b1": t_mon_auto / min(t_mon_comp, t_mon_vec),
        f"beam_b{BATCH}": t_batch_auto / t_batch_iter,
        f"monitor_b{BATCH}": t_mon_batch_auto / min(t_mon_batch_c, t_mon_batch_v),
    }

    # -- expected-winner gate: unconditional, machine-independent ------
    # The cost model under the pinned profile must route each kernel to
    # the engine it is actually fastest on.  This is the per-kernel
    # replacement for the old blanket vector floor: the sequential beam
    # recurrence is *supposed* to stay compiled.
    beam_prog = compile_program(model.schedule)
    mon_prog = compile_program(monitor.schedule)
    winners = {}
    for label, prog, want in (("beam", beam_prog, "compiled"),
                              ("monitor", mon_prog, "vector")):
        for b in (1, BATCH):
            plan = plan_for(prog, batch=b, horizon=16_384,
                            profile=REFERENCE_PROFILE)
            winners[f"{label}_b{b}"] = plan.engine
            assert plan.engine == want, (
                f"expected winner for {label} at B={b} is {want}, "
                f"cost model chose {plan.engine}: {plan.reason}"
            )

    single = t_interp / t_comp
    aggregate = t_interp / t_lane
    vec_speedup = t_comp / t_vec
    mon_speedup = t_mon_comp / t_mon_vec
    rows = [
        f"interpreted: {t_interp * 1e6:9.1f} us/iter",
        f"compiled:    {t_comp * 1e6:9.1f} us/iter  ({single:.1f}x)",
        f"vector:      {t_vec * 1e6:9.1f} us/iter  ({vec_speedup:.1f}x vs compiled)",
        f"monitor compiled: {t_mon_comp * 1e6:7.2f} us/iter",
        f"monitor vector:   {t_mon_vec * 1e6:7.2f} us/iter  "
        f"({mon_speedup:.1f}x vs compiled)",
        f"batched B={BATCH}: {t_lane * 1e6:7.2f} us/lane-iter  ({aggregate:.1f}x aggregate)",
        "auto vs best static tier: " + ", ".join(
            f"{k} {v:.2f}x" for k, v in auto_vs_best.items()
        ),
        "cost-model winners: " + ", ".join(
            f"{k}={v}" for k, v in winners.items()
        ),
    ]
    print("\n=== engine throughput (beam model, 1 bunch) ===")
    for row in rows:
        print(row)

    records = [
        {
            "name": "engine/interpreted",
            "stats": {"mean": t_interp, "rounds": 1500},
        },
        {
            "name": "engine/compiled",
            "stats": {"mean": t_comp, "rounds": 10_000},
            "extra_info": {"speedup_vs_interpreted": single},
        },
        {
            "name": "engine/vector",
            "stats": {"mean": t_vec, "rounds": 16_384},
            "extra_info": {
                "speedup_vs_compiled": vec_speedup,
                "speedup_vs_interpreted": t_interp / t_vec,
            },
        },
        {
            "name": "engine/monitor_compiled",
            "stats": {"mean": t_mon_comp, "rounds": 20_000},
        },
        {
            "name": "engine/monitor_vector",
            "stats": {"mean": t_mon_vec, "rounds": 65_536},
            "extra_info": {"speedup_vs_compiled": mon_speedup},
        },
        {
            "name": f"engine/batched_b{BATCH}",
            "stats": {"mean": t_lane, "rounds": 2000 * BATCH},
            "extra_info": {
                "batch": BATCH,
                "seconds_per_batch_iteration": t_batch_iter,
                "aggregate_speedup_vs_interpreted": aggregate,
            },
        },
        {
            "name": f"engine/monitor_batched_b{BATCH}",
            "stats": {"mean": t_mon_batch_c, "rounds": 4000},
            "extra_info": {
                "batch": BATCH,
                "vector_mean": t_mon_batch_v,
                "speedup_vector_vs_compiled": t_mon_batch_c / t_mon_batch_v,
            },
        },
        {
            "name": "engine/auto",
            "stats": {"mean": t_auto, "rounds": 16_384},
            "extra_info": {"vs_best_static": auto_vs_best["beam_b1"]},
        },
        {
            "name": "engine/monitor_auto",
            "stats": {"mean": t_mon_auto, "rounds": 65_536},
            "extra_info": {"vs_best_static": auto_vs_best["monitor_b1"]},
        },
        {
            "name": f"engine/batched_auto_b{BATCH}",
            "stats": {"mean": t_batch_auto / BATCH, "rounds": 2000 * BATCH},
            "extra_info": {"vs_best_static": auto_vs_best[f"beam_b{BATCH}"]},
        },
        {
            "name": f"engine/monitor_batched_auto_b{BATCH}",
            "stats": {"mean": t_mon_batch_auto, "rounds": 16_384},
            "extra_info": {"vs_best_static": auto_vs_best[f"monitor_b{BATCH}"]},
        },
        {
            "name": "autotune/expected_winners",
            "stats": {"mean": 0.0, "rounds": 1},
            "extra_info": {"winners": winners, "auto_vs_best": auto_vs_best},
        },
        *_certificate_entries(),
    ]
    _RESULTS.mkdir(exist_ok=True)
    write_bench_json(_RESULTS / "BENCH_engine.json", records)
    write_bench_json(_ROOT / "BENCH_engine.json", records)

    # -- speedup targets, where the hardware can express them ----------
    cores = len(os.sched_getaffinity(0))
    if cores >= 2:
        assert single >= 10.0, f"compiled speedup {single:.1f}x below 10x target"
        assert aggregate >= 50.0, f"aggregate speedup {aggregate:.1f}x below 50x target"
        assert mon_speedup >= 3.0, (
            f"vector speedup {mon_speedup:.1f}x below 3x target "
            f"(monitor kernel, T >= {VECTOR_T})"
        )
        for kernel, ratio in auto_vs_best.items():
            assert ratio <= 1.05, (
                f"auto is {ratio:.2f}x the best static tier on {kernel} "
                f"(must be within 5%)"
            )


def _certificate_entries() -> list[dict]:
    """Per-schedule vectorization-certificate stats: how much of each
    built-in kernel the dependence analysis certifies chunkable.  The
    timing is the analysis cost itself; the chunkability numbers ride in
    ``extra_info`` so the history gate can watch them regress."""
    from repro.cgra.verify import certify_vectorization

    stock = [
        (f"beam_n{n}_{'pipelined' if p else 'plain'}",
         lambda n=n, p=p: compile_beam_model(n_bunches=n, pipelined=p))
        for n in (1, 4, 8)
        for p in (False, True)
    ]
    stock.append(("monitor", compile_monitor_model))
    entries = []
    for label, build in stock:
        model = build()
        t0 = time.perf_counter()
        cert = certify_vectorization(model.schedule).certificate
        t_cert = time.perf_counter() - t0
        stats = cert.stats()
        entries.append(
            {
                "name": f"certificate/{label}",
                "stats": {"mean": t_cert, "rounds": 1},
                "extra_info": {
                    "n_ops": stats["n_ops"],
                    "n_segments": stats["n_segments"],
                    "n_chunkable_segments": stats["n_chunkable_segments"],
                    "chunkable_ops": stats["chunkable_ops"],
                    "chunkable_fraction": stats["chunkable_fraction"],
                    "max_chunk_width": stats["max_chunk_width"],
                },
            }
        )
    return entries
