"""Engine throughput benchmark with a built-in parity gate.

Measures the three execution tiers on the shipped beam model —
interpreted, compiled, and batched-compiled with 64 lockstep lanes —
and writes ``benchmarks/results/BENCH_engine.json``.  The same run
first proves the compiled engine bit-exact against the interpreter, so
a reported speedup can never come from a semantics change.

Run directly (no pytest-benchmark plugin needed — timing is manual so
parity + perf land in one process):

.. code-block:: bash

    PYTHONPATH=src python -m pytest -q benchmarks/test_engine_parity_perf.py

Targets (ISSUE: perf_opt): compiled >= 10x interpreted per iteration,
batched >= 50x aggregate lane-iterations at B = 64.
"""

from __future__ import annotations

import math
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cgra import (
    BatchSensorBus,
    BatchedCgraExecutor,
    CgraExecutor,
    SensorBus,
    compile_beam_model,
)
from repro.cgra.sensor import (
    ACTUATOR_DELTA_T,
    SENSOR_GAP_BUFFER,
    SENSOR_PERIOD,
    SENSOR_REF_BUFFER,
)
from repro.obs.export import write_bench_json
from repro.physics import KNOWN_IONS, SIS18

pytestmark = pytest.mark.bench

_RESULTS = Path(__file__).parent / "results"
BATCH = 64


def _params(model):
    gamma0 = SIS18.gamma_from_revolution_frequency(800e3)
    return model.default_params(
        gamma_r0=gamma0,
        q_over_mc2=KNOWN_IONS["14N7+"].gamma_gain_per_volt(),
        orbit_length=SIS18.circumference,
        alpha_c=SIS18.alpha_c,
        v_scale=4862.0,
        v_scale_ref=4 * 4862.0,
        f_sample=250e6,
        harmonic=4,
    )


def _scalar_bus():
    bus = SensorBus()
    bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
    bus.register_addr_reader(
        SENSOR_REF_BUFFER, lambda a: math.sin(2 * math.pi * 800e3 * a / 250e6)
    )
    bus.register_addr_reader(
        SENSOR_GAP_BUFFER, lambda a: math.sin(2 * math.pi * 3.2e6 * a / 250e6 + 0.14)
    )
    bus.register_writer(ACTUATOR_DELTA_T, lambda v: None)
    return bus


def _batch_bus():
    bus = BatchSensorBus(batch=BATCH)
    bus.register_reader(SENSOR_PERIOD, lambda: 1.25e-6)
    bus.register_addr_reader(
        SENSOR_REF_BUFFER, lambda a: np.sin(2 * np.pi * 800e3 * a / 250e6)
    )
    bus.register_addr_reader(
        SENSOR_GAP_BUFFER, lambda a: np.sin(2 * np.pi * 3.2e6 * a / 250e6 + 0.14)
    )
    bus.register_writer(ACTUATOR_DELTA_T, lambda v: None)
    return bus


def _time_run(executor, n_iterations: int) -> float:
    """Seconds per iteration for one bulk run."""
    t0 = time.perf_counter()
    executor.run(n_iterations)
    return (time.perf_counter() - t0) / n_iterations


def test_engine_parity_and_throughput():
    model = compile_beam_model(n_bunches=1, pipelined=True)
    params = _params(model)

    # -- parity gate: speedups below are only meaningful if bit-exact --
    ex_i = CgraExecutor(model.schedule, _scalar_bus(), params, engine="interpreted")
    ex_c = CgraExecutor(model.schedule, _scalar_bus(), params, engine="compiled")
    for _ in range(30):
        ex_i.run_iteration()
        ex_c.run_iteration()
        assert ex_c.registers == ex_i.registers, "parity regression"

    # -- throughput, warmed executors, one bulk run each ---------------
    interp = CgraExecutor(model.schedule, _scalar_bus(), params, engine="interpreted")
    interp.run(50)  # warmup
    t_interp = _time_run(interp, 1500)

    comp = CgraExecutor(model.schedule, _scalar_bus(), params, engine="compiled")
    comp.run(200)
    t_comp = _time_run(comp, 10_000)

    batched = BatchedCgraExecutor(model.schedule, _batch_bus(), params)
    batched.run(100)
    t_batch_iter = _time_run(batched, 2000)
    t_lane = t_batch_iter / BATCH

    single = t_interp / t_comp
    aggregate = t_interp / t_lane
    rows = [
        f"interpreted: {t_interp * 1e6:9.1f} us/iter",
        f"compiled:    {t_comp * 1e6:9.1f} us/iter  ({single:.1f}x)",
        f"batched B={BATCH}: {t_lane * 1e6:7.2f} us/lane-iter  ({aggregate:.1f}x aggregate)",
    ]
    print("\n=== engine throughput (beam model, 1 bunch) ===")
    for row in rows:
        print(row)

    _RESULTS.mkdir(exist_ok=True)
    write_bench_json(
        _RESULTS / "BENCH_engine.json",
        [
            {
                "name": "engine/interpreted",
                "stats": {"mean": t_interp, "rounds": 1500},
            },
            {
                "name": "engine/compiled",
                "stats": {"mean": t_comp, "rounds": 10_000},
                "extra_info": {"speedup_vs_interpreted": single},
            },
            {
                "name": f"engine/batched_b{BATCH}",
                "stats": {"mean": t_lane, "rounds": 2000 * BATCH},
                "extra_info": {
                    "batch": BATCH,
                    "seconds_per_batch_iteration": t_batch_iter,
                    "aggregate_speedup_vs_interpreted": aggregate,
                },
            },
            *_certificate_entries(),
        ],
    )

    assert single >= 10.0, f"compiled speedup {single:.1f}x below 10x target"
    assert aggregate >= 50.0, f"aggregate speedup {aggregate:.1f}x below 50x target"


def _certificate_entries() -> list[dict]:
    """Per-schedule vectorization-certificate stats: how much of each
    built-in kernel the dependence analysis certifies chunkable.  The
    timing is the analysis cost itself; the chunkability numbers ride in
    ``extra_info`` so the history gate can watch them regress."""
    from repro.cgra.verify import certify_vectorization

    entries = []
    for n_bunches in (1, 4, 8):
        for pipelined in (False, True):
            model = compile_beam_model(n_bunches=n_bunches, pipelined=pipelined)
            t0 = time.perf_counter()
            cert = certify_vectorization(model.schedule).certificate
            t_cert = time.perf_counter() - t0
            stats = cert.stats()
            suffix = "pipelined" if pipelined else "plain"
            entries.append(
                {
                    "name": f"certificate/beam_n{n_bunches}_{suffix}",
                    "stats": {"mean": t_cert, "rounds": 1},
                    "extra_info": {
                        "n_ops": stats["n_ops"],
                        "n_segments": stats["n_segments"],
                        "n_chunkable_segments": stats["n_chunkable_segments"],
                        "chunkable_ops": stats["chunkable_ops"],
                        "chunkable_fraction": stats["chunkable_fraction"],
                        "max_chunk_width": stats["max_chunk_width"],
                    },
                }
            )
    return entries
