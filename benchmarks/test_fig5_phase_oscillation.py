"""E5 — Fig. 5: phase-difference traces, bench (5a) vs. machine (5b).

The headline reproduction.  Runs both sides over several jump windows
and prints the paper's comparison quantities next to the paper's values:

* synchrotron frequency (paper: 1.28 kHz bench / 1.2 kHz machine),
* first post-jump peak-to-peak ≈ 2 × jump (16° bench / 20° machine),
* oscillation damped well inside the 50 ms inter-jump window,
* settled phase shift = jump amplitude.
"""

import numpy as np

from repro.experiments.fig5 import fig5_metrics, fig5_run_bench, fig5_run_machine
from repro.experiments.mde import MDE_JUMP_DEG_BENCH, MDE_JUMP_DEG_MACHINE


def test_fig5a_bench(benchmark, report):
    result = benchmark.pedantic(
        fig5_run_bench, kwargs={"duration": 0.30}, rounds=1, iterations=1
    )
    smoothed = result.phase_deg_smoothed(5)  # the paper's display filter
    m = fig5_metrics(result.time, smoothed, MDE_JUMP_DEG_BENCH, jump_time=0.005)
    m2 = fig5_metrics(result.time, smoothed, MDE_JUMP_DEG_BENCH, jump_time=0.105)

    rows = [
        "Fig. 5a (cavity-in-the-loop bench, 8 deg jumps):",
        f"  synchrotron frequency : {m.synchrotron_frequency:7.1f} Hz   (paper: 1280 Hz)",
        f"  first peak-to-peak    : {m.first_peak_to_peak:7.2f} deg  (paper: ~16 = 2 x 8)",
        f"  peak ratio            : {m.peak_ratio:7.2f}      (paper: ~1)",
        f"  residual before jump  : {m.residual_peak_to_peak:7.3f} deg  (damped inside window)",
        f"  settled shift         : {m.settled_shift:7.2f} deg  (paper: 8)",
        f"  third-window repeat   : f_s {m2.synchrotron_frequency:.0f} Hz, "
        f"ratio {m2.peak_ratio:.2f} (periodic jumps reproduce)",
        f"  real-time slack       : {result.deadline.min_slack:7.1f} ticks "
        f"over {result.deadline.n_iterations} revolutions",
    ]
    report(benchmark, "Fig. 5a — simulator phase oscillation", rows)

    assert abs(m.synchrotron_frequency - 1.28e3) / 1.28e3 < 0.08
    assert 0.75 < m.peak_ratio < 1.15
    assert m.residual_peak_to_peak < 1.0
    assert abs(m.settled_shift - 8.0) < 0.5


def test_fig5b_machine(benchmark, report):
    result = benchmark.pedantic(
        fig5_run_machine,
        kwargs={"duration": 0.30, "n_particles": 3000},
        rounds=1,
        iterations=1,
    )
    m = fig5_metrics(result.time, result.phase_deg, MDE_JUMP_DEG_MACHINE, jump_time=0.005)

    rows = [
        "Fig. 5b (emulated SIS18 MDE, 10 deg jumps, 3000 macro particles):",
        f"  synchrotron frequency : {m.synchrotron_frequency:7.1f} Hz   (paper: 1200 Hz)",
        f"  first peak-to-peak    : {m.first_peak_to_peak:7.2f} deg  (paper: ~20 = 2 x 10)",
        f"  peak ratio            : {m.peak_ratio:7.2f}      (paper: ~1)",
        f"  residual before jump  : {m.residual_peak_to_peak:7.3f} deg",
        f"  settled shift         : {m.settled_shift:7.2f} deg  (paper: 10)",
        "match vs 5a: same oscillation/damping shape, frequencies 1.28 vs 1.2 kHz,",
        "constant offsets irrelevant (dead times), exactly as the paper argues.",
    ]
    report(benchmark, "Fig. 5b — machine-experiment phase oscillation", rows)

    assert abs(m.synchrotron_frequency - 1.2e3) / 1.2e3 < 0.08
    assert 0.75 < m.peak_ratio < 1.2
    assert abs(m.settled_shift - 10.0) < 1.0
