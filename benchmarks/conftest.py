"""Shared benchmark helpers.

Every benchmark regenerates one paper artefact (figure/table) and
reports the reproduced rows three ways: attached to
``benchmark.extra_info`` (lands in the pytest-benchmark JSON), printed
(visible with ``pytest -s``), and appended to
``benchmarks/results/<slug>.txt`` so the tables survive a plain
``pytest benchmarks/ --benchmark-only`` run.  EXPERIMENTS.md records the
paper-vs-measured comparison produced by these benches.

On top of the per-title text files, the session writes one
``benchmarks/results/BENCH_session.json`` aggregating every reported
benchmark's timing stats in the pytest-benchmark JSON shape
(:func:`repro.obs.export.write_bench_json`) — the artefact CI uploads so
the perf trajectory is machine-readable — and appends it to the
``benchmarks/results/history.jsonl`` trajectory so
``python -m repro.obs.bench_history check`` can flag regressions against
the median of past runs.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

_RESULTS_DIR = Path(__file__).parent / "results"

#: (title, stats-dict, rows) tuples collected over the session.
_BENCH_ENTRIES: list[dict] = []


def record_rows(benchmark, title: str, rows: list[str]) -> None:
    """Attach reproduced output rows to the benchmark, print them, and
    persist them under ``benchmarks/results/``."""
    benchmark.extra_info[title] = rows
    print(f"\n=== {title} ===")
    for row in rows:
        print(row)
    _RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:60]
    path = _RESULTS_DIR / f"{slug}.txt"
    path.write_text(f"=== {title} ===\n" + "\n".join(rows) + "\n")
    try:
        stats = {
            key: float(benchmark.stats[key])
            for key in ("mean", "min", "max", "stddev", "rounds")
        }
    except Exception:
        return  # stats not available (benchmark disabled/skipped)
    _BENCH_ENTRIES.append(
        {"name": title, "stats": stats, "extra_info": {"rows": rows}}
    )


def pytest_sessionfinish(session, exitstatus):
    """Aggregate all reported benchmarks into BENCH_session.json and
    extend the perf-history trajectory."""
    if not _BENCH_ENTRIES:
        return
    from repro.obs.bench_history import append_run
    from repro.obs.export import write_bench_json

    _RESULTS_DIR.mkdir(exist_ok=True)
    bench_path = write_bench_json(_RESULTS_DIR / "BENCH_session.json", _BENCH_ENTRIES)
    append_run(bench_path, history_path=_RESULTS_DIR / "history.jsonl")


@pytest.fixture()
def report():
    """Fixture returning the row recorder."""
    return record_rows
