"""Shared benchmark helpers.

Every benchmark regenerates one paper artefact (figure/table) and
reports the reproduced rows three ways: attached to
``benchmark.extra_info`` (lands in the pytest-benchmark JSON), printed
(visible with ``pytest -s``), and appended to
``benchmarks/results/<slug>.txt`` so the tables survive a plain
``pytest benchmarks/ --benchmark-only`` run.  EXPERIMENTS.md records the
paper-vs-measured comparison produced by these benches.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

_RESULTS_DIR = Path(__file__).parent / "results"


def record_rows(benchmark, title: str, rows: list[str]) -> None:
    """Attach reproduced output rows to the benchmark, print them, and
    persist them under ``benchmarks/results/``."""
    benchmark.extra_info[title] = rows
    print(f"\n=== {title} ===")
    for row in rows:
        print(row)
    _RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:60]
    path = _RESULTS_DIR / f"{slug}.txt"
    path.write_text(f"=== {title} ===\n" + "\n".join(rows) + "\n")


@pytest.fixture()
def report():
    """Fixture returning the row recorder."""
    return record_rows
