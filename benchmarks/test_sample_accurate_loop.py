"""E4b — the fully sample-accurate closed loop (waveform-level DSP).

The fast-path Fig. 5 bench closes the loop on the model's Δt directly;
this bench closes it the hardware way: the DSP IQ-demodulates the
*beam waveform* the DAC produced.  Reports the measurement-chain
accuracy and the damping achieved through the full 250 MHz chain.
"""

import numpy as np

from repro.control import ControlLoopConfig
from repro.hil.closed_loop import SampleAccurateBench, SampleAccurateBenchConfig
from repro.physics import SIS18, KNOWN_IONS


def test_sample_accurate_closed_loop(benchmark, report):
    def run():
        bench = SampleAccurateBench(SampleAccurateBenchConfig(
            ring=SIS18,
            ion=KNOWN_IONS["14N7+"],
            control=ControlLoopConfig(sample_rate=800e3, gain_scale=0.1),
            jump_start_time=0.0,
        ))
        return bench.run_revolutions(1500)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    ground_truth = -360.0 * 4 * 800e3 * result.delta_t
    err = np.abs(result.phase_deg[50:] - ground_truth[50:])
    early = result.phase_deg[100:400]
    late = result.phase_deg[1200:]
    rows = [
        "1500 revolutions, DSP measuring the beam *waveform* (IQ at 3.2 MHz):",
        f"  IQ vs model ground truth : median {np.median(err):.3f} deg, "
        f"worst {err.max():.3f} deg",
        f"  oscillation damped       : pp {early.max() - early.min():.2f} deg -> "
        f"{late.max() - late.min():.2f} deg",
        f"  settled level            : {late.mean():.2f} deg (jump 8)",
        "every Fig. 4 stage exercised at 250 MHz: DDS -> ADC -> buffers -> "
        "CGRA -> Gauss pulses -> DAC -> IQ DSP -> FIR -> gap phase.",
    ]
    report(benchmark, "E4b — sample-accurate closed loop", rows)

    assert err.max() < 0.2
    assert (late.max() - late.min()) < 0.3 * (early.max() - early.min())


def test_fig5_cgra_engine_crosscheck(benchmark, report):
    """E5b cross-check: the headline scenario on the cycle-accurate
    float32 CGRA engine (what the real overlay computes)."""
    from repro.experiments.fig5 import fig5_metrics
    from repro.experiments.mde import bench_config
    from repro.hil.simulator import CavityInTheLoop

    def run():
        sim = CavityInTheLoop(bench_config(engine="cgra", precision="single",
                                           record_every=4))
        return sim.run(0.06)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    m = fig5_metrics(result.time, result.phase_deg_smoothed(), 8.0, 0.005)
    rows = [
        "Fig. 5a scenario on the cycle-accurate single-precision CGRA engine:",
        f"  synchrotron frequency : {m.synchrotron_frequency:.1f} Hz",
        f"  peak ratio            : {m.peak_ratio:.2f}",
        f"  settled shift         : {m.settled_shift:.2f} deg",
        "matches the fast path (bit-identical at double precision; "
        "float32 deviates < 0.001 deg over this window, see A3).",
    ]
    report(benchmark, "E5b — Fig. 5a on the CGRA engine", rows)

    assert abs(m.synchrotron_frequency - 1.28e3) / 1.28e3 < 0.08
    assert 0.75 < m.peak_ratio < 1.15
    assert abs(m.settled_shift - 8.0) < 0.5
