"""E3 — Fig. 3: the FPGA framework, sample-accurate throughput.

Streams revolutions through the full Fig. 3 chain (ADC → ring buffers →
detectors → CGRA → Gauss generator → DAC) and measures the wall-clock
cost per simulated revolution.  This quantifies the repro band's caveat:
the *Python* simulation of the framework is orders of magnitude away
from the 1.25 µs real-time revolution period — the real-time claim lives
in the cycle domain (see E6), not in Python wall clock.
"""

import numpy as np

from repro.hil.framework import FpgaFramework, FrameworkConfig
from repro.physics import SIS18, KNOWN_IONS
from repro.signal.dds import GroupDDS


def _stream(n_revolutions: int) -> FpgaFramework:
    gap_volts, adc_amp = 4862.0, 0.9
    fw = FpgaFramework(FrameworkConfig(
        ring=SIS18,
        ion=KNOWN_IONS["14N7+"],
        harmonic=4,
        gap_volts_per_adc_volt=gap_volts / adc_amp,
        ref_volts_per_adc_volt=4 * gap_volts / adc_amp,
    ))
    group = GroupDDS(800e3, 4, adc_amp, 250e6)
    group.reset_phase()
    block = 312
    for _ in range(n_revolutions):
        ref, gap = group.generate(block)
        fw.feed(ref.samples, gap.samples)
    return fw


def test_fig3_framework_throughput(benchmark, report):
    n_rev = 120
    fw = benchmark.pedantic(_stream, args=(n_rev,), rounds=3, iterations=1)

    per_rev = benchmark.stats["mean"] / n_rev
    t_rev = 1.25e-6
    rows = [
        f"streamed {n_rev} revolutions through the full Fig. 3 chain "
        f"(14-bit ADC @ 250 MHz, 8192-deep buffers, CGRA, 16-bit DAC)",
        f"python wall clock per revolution: {per_rev * 1e3:.2f} ms "
        f"({per_rev / t_rev:.0f}x slower than the 1.25 us revolution)",
        f"cycle-domain budget (the real claim): "
        f"{fw.model.schedule_length} ticks used of "
        f"{111e6 / 800e3:.1f} available -> slack "
        f"{fw.deadline.stats().min_slack:.1f} ticks",
        f"model iterations completed: {fw.executor.iterations}, "
        f"deadline met: {fw.deadline.stats().met}",
    ]
    report(benchmark, "Fig. 3 — framework throughput (sample-accurate)", rows)
    assert fw.deadline.stats().met
