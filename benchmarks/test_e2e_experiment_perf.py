"""End-to-end experiment benchmark: the runner-level sweep hot path.

Reproduces the committed baseline workload
(``benchmarks/results/e2e_baseline.json``: 16 jump amplitudes spanning
2-12 degrees, 0.02 s of machine time each, ``SWEEP_CHUNK`` lanes per
batched bench) and times it end to end — config build, batched HIL run,
trace extraction, shard merge — exactly the way the sweep experiment
dispatches it.  Writes ``BENCH_e2e.json`` (results dir + repo root).

Two gates:

* **Parity, unconditional** — the merged phase traces and the emitted
  CSV must be byte-identical across engines {compiled, vector, auto}
  and across ``jobs`` {1, 2}.  A wall-clock win that changes a byte is
  a correctness bug, not a speedup.
* **Speed, fingerprint-gated** — on the machine the committed baseline
  was measured on, the auto-engine sweep must beat the baseline mean by
  >= 2x.  Other machines report the real ratio without asserting (their
  baseline numbers are not comparable).

Run directly (manual timing, no pytest-benchmark plugin needed):

.. code-block:: bash

    PYTHONPATH=src python -m pytest -q benchmarks/test_e2e_experiment_perf.py
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cgra import get_default_engine, set_default_engine
from repro.experiments.runner import _write_csv
from repro.experiments.sweep import plan_sweep, run_sweep_shard
from repro.obs.export import write_bench_json
from repro.parallel import raise_on_failures, run_sharded

pytestmark = pytest.mark.bench

_RESULTS = Path(__file__).parent / "results"
_ROOT = Path(__file__).parent.parent
_BASELINE = _RESULTS / "e2e_baseline.json"

#: The workload is pinned to the committed baseline's; the test asserts
#: the two match so the comparison can never silently drift.
N_AMPS = 16
AMP_LO = 2.0
AMP_HI = 12.0
DURATION_S = 0.02
#: Timed repetitions of the headline (auto, jobs=1) configuration.
TIMED_ROUNDS = 3
#: CSV parity compares a strided view of the full trace — every record
#: of every lane would be a multi-megabyte text artefact per variant
#: without proving anything the stride misses (the raw trace buffers
#: are compared in full).
CSV_STRIDE = 16


def _tasks():
    amps = np.linspace(AMP_LO, AMP_HI, N_AMPS)
    return plan_sweep(amps, DURATION_S, keep_trace=True)


def _run_once(engine: str, jobs: int) -> tuple[float, np.ndarray]:
    """One full sweep under ``engine``; returns (seconds, merged trace)."""
    saved = get_default_engine()
    set_default_engine(engine)
    try:
        t0 = time.perf_counter()
        shards = raise_on_failures(
            run_sharded(run_sweep_shard, _tasks(), jobs=jobs), "e2e sweep"
        )
        elapsed = time.perf_counter() - t0
    finally:
        set_default_engine(saved)
    return elapsed, np.hstack([s.phase_deg for s in shards])


def _csv_bytes(tmp_path: Path, label: str, trace: np.ndarray) -> bytes:
    """The sweep trace through the runner's own CSV writer."""
    path = tmp_path / f"{label}.csv"
    sub = trace[::CSV_STRIDE]
    header = ",".join(f"lane{i}_phase_deg" for i in range(sub.shape[1]))
    _write_csv(path, header, [sub[:, i] for i in range(sub.shape[1])])
    return path.read_bytes()


def test_e2e_sweep_speed_and_parity(tmp_path):
    baseline = json.loads(_BASELINE.read_text())
    assert baseline["workload"] == {
        "n_amps": N_AMPS,
        "amp_lo": AMP_LO,
        "amp_hi": AMP_HI,
        "duration_s": DURATION_S,
    }, "benchmark workload drifted from the committed baseline's"

    # -- parity sweep: every engine, serial and pooled -----------------
    # The first (compiled, jobs=1) run doubles as the compile warmup.
    t_compiled, ref_trace = _run_once("compiled", jobs=1)
    ref_bytes = ref_trace.tobytes()
    ref_csv = _csv_bytes(tmp_path, "compiled", ref_trace)
    variants = {"compiled/jobs1": t_compiled}
    for label, engine, jobs in (
        ("vector/jobs1", "vector", 1),
        ("auto/jobs1", "auto", 1),
        ("auto/jobs2", "auto", 2),
    ):
        elapsed, trace = _run_once(engine, jobs)
        variants[label] = elapsed
        assert trace.tobytes() == ref_bytes, f"trace bytes diverged: {label}"
        assert _csv_bytes(tmp_path, label.replace("/", "_"), trace) == ref_csv, (
            f"CSV bytes diverged: {label}"
        )

    # -- headline timing: auto engine, serial (the baseline's shape) ---
    rounds = [variants["auto/jobs1"]]
    for _ in range(TIMED_ROUNDS - 1):
        elapsed, trace = _run_once("auto", jobs=1)
        assert trace.tobytes() == ref_bytes
        rounds.append(elapsed)
    mean_s = float(np.mean(rounds))
    min_s = float(np.min(rounds))
    speedup = baseline["mean_s"] / mean_s

    machine = {
        "nodename": platform.node(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
    }
    same_box = machine == baseline["machine"]

    rows = [
        f"workload: {N_AMPS} amps x {DURATION_S * 1e3:.0f} ms machine time",
        *(f"{label}: {t:.3f} s" for label, t in variants.items()),
        f"auto/jobs1 over {TIMED_ROUNDS} rounds: mean {mean_s:.3f} s, min {min_s:.3f} s",
        f"baseline mean {baseline['mean_s']:.3f} s -> {speedup:.1f}x "
        f"({'same box, gated' if same_box else 'different box, report only'})",
    ]
    print("\n=== e2e sweep (runner workload) ===")
    for row in rows:
        print(row)

    records = [
        {
            "name": "e2e/sweep_auto",
            "stats": {"mean": mean_s, "min": min_s, "rounds": TIMED_ROUNDS},
            "extra_info": {
                "engine": "auto",
                "jobs": 1,
                "baseline_mean_s": baseline["mean_s"],
                "speedup_vs_baseline": speedup,
                "baseline_machine_match": same_box,
                "workload": baseline["workload"],
            },
        },
        {
            "name": "e2e/sweep_compiled",
            "stats": {"mean": variants["compiled/jobs1"], "rounds": 1},
            "extra_info": {"engine": "compiled", "jobs": 1,
                           "includes_compile_warmup": True},
        },
        {
            "name": "e2e/sweep_vector",
            "stats": {"mean": variants["vector/jobs1"], "rounds": 1},
            "extra_info": {"engine": "vector", "jobs": 1},
        },
        {
            "name": "e2e/sweep_auto_jobs2",
            "stats": {"mean": variants["auto/jobs2"], "rounds": 1},
            "extra_info": {"engine": "auto", "jobs": 2},
        },
        {
            "name": "e2e/parity",
            "stats": {"mean": 0.0, "rounds": 1},
            "extra_info": {
                "byte_identical": sorted(variants),
                "csv_stride": CSV_STRIDE,
            },
        },
    ]
    _RESULTS.mkdir(exist_ok=True)
    write_bench_json(_RESULTS / "BENCH_e2e.json", records)
    write_bench_json(_ROOT / "BENCH_e2e.json", records)

    if same_box:
        assert speedup >= 2.0, (
            f"e2e sweep only {speedup:.2f}x the committed baseline "
            f"(mean {mean_s:.3f} s vs {baseline['mean_s']:.3f} s); >= 2x required"
        )
