"""E10 — Landau damping / filamentation vs. control-loop damping.

The multi-particle extension quantifying Section V's argument: the loop
damps the dipole oscillation much faster than Landau damping and
filamentation do, so the single-macro-particle bench may neglect them.
"""

from repro.experiments.landau import landau_damping_comparison


def test_landau_vs_loop_damping(benchmark, report):
    rows_data = benchmark.pedantic(
        landau_damping_comparison,
        kwargs={"n_particles": 3000, "duration": 0.045},
        rounds=1,
        iterations=1,
    )

    rows = [
        "configuration   damping rate   1/e time    sigma growth   residual",
    ]
    for r in rows_data:
        label = "loop ON " if r.control_enabled else "loop OFF"
        rows.append(
            f"{label}        {r.damping_rate:8.1f} /s   "
            f"{r.time_constant * 1e3:7.2f} ms   {r.bunch_length_growth * 100:8.1f} %   "
            f"{r.residual_amplitude_deg:6.2f} deg"
        )
    off = next(r for r in rows_data if not r.control_enabled)
    on = next(r for r in rows_data if r.control_enabled)
    rows.append(
        f"loop damping is {on.damping_rate / off.damping_rate:.1f}x stronger than "
        "Landau damping/filamentation — the paper's justification for the "
        "single-macro-particle simplification."
    )
    report(benchmark, "E10 — Landau damping vs. control loop", rows)

    assert off.damping_rate > 0.0
    assert on.damping_rate > 3 * off.damping_rate
    assert off.bunch_length_growth > 0.0
