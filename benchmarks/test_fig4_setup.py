"""E4 — Fig. 4: the experimental setup (closed-loop step cost).

Builds the full Fig. 4 bench — synchronised DDS group, AWG phase-jump
drive toggling every 1/20 s, beam model, DSP phase detection, control
loop — verifies the drive cadence, and measures the cost of one closed-
loop revolution on the fast path.
"""

import numpy as np

from repro.experiments.mde import bench_config
from repro.hil.simulator import CavityInTheLoop


def test_fig4_closed_loop_step(benchmark, report):
    sim = CavityInTheLoop(bench_config())

    # The paper's drive cadence: toggles every twentieth of a second.
    toggles = sim.jump.toggle_times(1.0)
    assert len(toggles) == 20

    def steps():
        for _ in range(1000):
            sim.step_revolution()

    benchmark.pedantic(steps, rounds=3, iterations=1)
    per_rev = benchmark.stats["mean"] / 1000

    rows = [
        f"bench: f_ref = 800 kHz, gap = 3200 kHz (h = 4), "
        f"V_gap tuned to {sim.gap_voltage_amplitude:.0f} V for f_s = 1.28 kHz",
        f"AWG drive: 8 deg jumps toggled every 0.05 s "
        f"({len(toggles)} toggles per second, as in the paper)",
        f"control loop: f_pass = 1.4 kHz, gain = -5, recursion = 0.99",
        f"fast-path cost per closed-loop revolution: {per_rev * 1e6:.1f} us "
        f"({per_rev / 1.25e-6:.1f}x the real revolution period)",
        f"CGRA schedule for the same model: {sim.model.schedule_length} ticks "
        f"= {sim.model.schedule_length / 111.0:.2f} us at 111 MHz (real time)",
    ]
    report(benchmark, "Fig. 4 — experimental setup, closed-loop step", rows)
