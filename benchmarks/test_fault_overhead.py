"""Overhead of the fault-injection seams (not a paper artefact).

The fault design rule mirrors the obs layer's: "no-op by default, one
comparison when armed-but-idle".  A bench built without faults must run
the exact pre-fault code path (``self._faults is None`` is the only
added work), and a bench with faults armed far in the future pays one
float compare per revolution until the first onset.  Both claims are
pinned here — timing ratios *and* bit-identity of the produced traces.
The measured numbers are quoted in docs/FAULTS.md.
"""

import time

import numpy as np
import pytest

from repro import obs
from repro.experiments.mde import bench_config
from repro.faults.spec import FaultKind, FaultSpec
from repro.hil.simulator import CavityInTheLoop


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


#: Armed far beyond any bench duration: never activates, so the cost is
#: the pre-onset fast path (one float compare per revolution).
_LATE_FAULTS = (
    FaultSpec(kind=FaultKind.CAVITY_FAILURE, magnitude=0.5, onset_time=1e6),
    FaultSpec(kind=FaultKind.ADC_STUCK_BIT, magnitude=5.0, onset_time=1e6),
)


def test_disarmed_and_idle_fault_paths_are_free(benchmark, report):
    """Revolution rate: no faults vs. armed-but-idle faults."""
    duration = 0.01  # 8000 revolutions at 800 kHz

    def run_disarmed():
        return CavityInTheLoop(bench_config()).run(duration)

    def run_armed_idle():
        return CavityInTheLoop(bench_config(faults=_LATE_FAULTS)).run(duration)

    benchmark.pedantic(run_disarmed, rounds=3, iterations=1)
    disarmed_mean = benchmark.stats["mean"]

    def timed(fn, n=3):
        times = []
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    armed_mean = timed(run_armed_idle)

    n_revs = duration * 800e3
    overhead = armed_mean / disarmed_mean - 1.0
    report(benchmark, "faults — disarmed/idle overhead", [
        f"disarmed: {disarmed_mean / n_revs * 1e6:.2f} us/rev",
        f"armed, pre-onset: {armed_mean / n_revs * 1e6:.2f} us/rev",
        f"overhead while idle: {overhead * 100:+.1f} %",
    ])
    # One float compare per revolution must stay noise, not a tax.
    assert armed_mean < 1.25 * disarmed_mean


def test_armed_idle_traces_are_bit_identical(report, benchmark):
    """The stronger form of "free": armed-but-idle runs produce traces
    bit-identical to disarmed runs, so zero-fault campaigns cannot
    perturb any existing experiment output."""
    duration = 0.005
    clean = CavityInTheLoop(bench_config()).run(duration)
    armed = CavityInTheLoop(bench_config(faults=_LATE_FAULTS)).run(duration)

    def compare():
        np.testing.assert_array_equal(
            np.asarray(armed.phase_deg), np.asarray(clean.phase_deg)
        )
        np.testing.assert_array_equal(
            np.asarray(armed.delta_t), np.asarray(clean.delta_t)
        )

    benchmark.pedantic(compare, rounds=1, iterations=1)
    report(benchmark, "faults — armed/idle bit-identity", [
        f"{len(np.asarray(clean.phase_deg))} records bit-identical "
        f"with {len(_LATE_FAULTS)} faults armed past the horizon",
    ])
