"""E12 — dual-harmonic cavity study (paper ref. [9]'s LLRF system).

Regenerates the Landau-reservoir table across second-harmonic ratios and
demonstrates the HIL architecture's free extension: a dual-harmonic gap
signal requires no CGRA model change because the model reads the gap
ring buffer.
"""

import numpy as np

from repro.experiments.dual_harmonic_study import dual_harmonic_landau_study
from repro.experiments.mde import bench_config
from repro.hil.simulator import CavityInTheLoop
from repro.physics import SIS18, KNOWN_IONS
from repro.physics.oscillation import estimate_oscillation_frequency


def test_dual_harmonic_landau_table(benchmark, report):
    rows_data = benchmark.pedantic(
        dual_harmonic_landau_study,
        args=(SIS18, KNOWN_IONS["14N7+"]),
        kwargs={"n_particles": 1500, "n_turns": 36000},
        rounds=1,
        iterations=1,
    )

    rows = [
        "ratio   f_s linear   f_s(5ns)   f_s(50ns)   rel. spread   dipole retention",
    ]
    for r in rows_data:
        rows.append(
            f"{r.ratio:5.2f}   {r.f_s_linear:8.0f} Hz {r.f_s_small:8.0f} Hz "
            f"{r.f_s_large:9.0f} Hz   {r.frequency_spread * 100:9.1f} %   "
            f"{r.amplitude_retention * 100:10.1f} %"
        )
    rows.append(
        "bunch-lengthening (r -> 0.5) multiplies the synchrotron-frequency "
        "spread ~10x and decoheres coherent dipoles fastest — the operating "
        "mode of the dual-harmonic LLRF the paper's control chain serves."
    )
    report(benchmark, "E12 — dual-harmonic Landau study", rows)

    single = rows_data[0]
    flat = rows_data[-1]
    assert flat.frequency_spread > 5 * single.frequency_spread
    assert flat.amplitude_retention < single.amplitude_retention


def test_dual_harmonic_closed_loop(benchmark, report):
    def run():
        cfg = bench_config(record_every=4, dual_harmonic_ratio=0.3,
                           jump_start_time=0.002)
        sim = CavityInTheLoop(cfg)
        return sim, sim.run(0.04)

    sim, res = benchmark.pedantic(run, rounds=1, iterations=1)
    sel = (res.time > 0.002) & (res.time < 0.014)
    f = estimate_oscillation_frequency(res.time[sel], res.phase_deg[sel])
    tail = res.phase_deg[res.time > 0.03]

    rows = [
        f"closed loop with r = 0.3 second harmonic (V1 raised to "
        f"{sim.gap_voltage_amplitude:.0f} V to keep f_s):",
        f"  oscillation frequency : {f:7.1f} Hz (target 1280)",
        f"  settled level         : {tail.mean():7.2f} deg (jump 8)",
        f"  residual pp           : {tail.max() - tail.min():7.3f} deg",
        "  CGRA model unchanged — the gap buffer simply carries the "
        "dual-harmonic waveform.",
    ]
    report(benchmark, "E12b — dual-harmonic closed loop", rows)

    assert abs(f - 1.28e3) / 1.28e3 < 0.08
    assert abs(tail.mean() - 8.0) < 0.5
