"""Overhead of the observability layer (not a paper artefact).

The obs design rule is "off by default, ~free when off": the
cycle-accurate executors and the per-revolution HIL loop carry
instrumentation that must cost no more than a flag check while disabled.
These benches pin that claim two ways — the per-call cost of a disabled
instrument, and the end-to-end closed-loop revolution rate with
telemetry off vs. on.  The measured numbers are quoted in
docs/OBSERVABILITY.md.
"""

import time

import pytest

from repro import obs
from repro.experiments.mde import bench_config
from repro.hil.simulator import CavityInTheLoop


@pytest.fixture(autouse=True)
def _obs_off():
    """Benchmarks must start and end in the default (disabled) state."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def test_disabled_instruments_are_noops(benchmark, report):
    registry = obs.metrics()
    counter = registry.counter("bench_noop_total")
    gauge = registry.gauge("bench_noop_gauge")
    hist = registry.histogram("bench_noop_hist")
    tracer = obs.tracer()
    n = 100_000

    def hammer():
        for _ in range(n):
            counter.inc()
            gauge.set(1.0)
            hist.observe(1.0)
            tracer.event("x")

    benchmark.pedantic(hammer, rounds=5, iterations=1)
    per_call = benchmark.stats["mean"] / (4 * n)
    report(benchmark, "obs — disabled instrument cost", [
        f"disabled write: {per_call * 1e9:.0f} ns/call "
        f"(counter+gauge+histogram+event, {4 * n} calls/round)",
    ])
    assert counter.value() == 0  # nothing was recorded
    # A disabled write is one flag check: well under a microsecond.
    assert per_call < 1e-6


def test_closed_loop_overhead_disabled_vs_enabled(benchmark, report):
    """Revolution rate of the fast-path bench, telemetry off vs. on."""
    duration = 0.01  # 8000 revolutions at 800 kHz

    def run_once():
        CavityInTheLoop(bench_config()).run(duration)

    benchmark.pedantic(run_once, rounds=3, iterations=1)
    disabled_mean = benchmark.stats["mean"]

    def timed_runs(n=3):
        times = []
        for _ in range(n):
            t0 = time.perf_counter()
            run_once()
            times.append(time.perf_counter() - t0)
        return min(times)

    obs.enable(trace=True)
    enabled_mean = timed_runs()
    obs.enable(trace=True, profile=True)
    profiled_mean = timed_runs()
    obs.disable()

    n_revs = duration * 800e3
    overhead = enabled_mean / disabled_mean - 1.0
    profiled_overhead = profiled_mean / disabled_mean - 1.0
    report(benchmark, "obs — closed-loop overhead", [
        f"disabled: {disabled_mean / n_revs * 1e6:.2f} us/rev",
        f"enabled (metrics+trace): {enabled_mean / n_revs * 1e6:.2f} us/rev",
        f"overhead when enabled: {overhead * 100:+.1f} %",
        f"enabled (+profile): {profiled_mean / n_revs * 1e6:.2f} us/rev "
        f"({profiled_overhead * 100:+.1f} %)",
    ])
    # Enabled telemetry observes one histogram per revolution; the
    # profiler adds three perf_counter pairs per revolution.  Both must
    # stay a modest tax, not a slowdown class.
    assert enabled_mean < 2.0 * disabled_mean
    assert profiled_mean < 2.0 * disabled_mean
