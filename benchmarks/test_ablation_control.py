"""Ablation A5 — control-loop parameters.

The paper uses "the optimal parameters according to [8]": f_pass =
1.4 kHz, gain = −5, recursion factor = 0.99.  This ablation sweeps the
gain and the recursion factor and measures the resulting damping of the
jump response, showing the paper's operating point sits in the
well-damped basin and that wrong-signed gain destabilises the loop.
"""

import numpy as np

from repro.control import ControlLoopConfig
from repro.experiments.mde import bench_config
from repro.hil.simulator import CavityInTheLoop


def _settling_metric(gain: float, recursion: float) -> float:
    """Residual peak-to-peak 35-50 ms after one jump (deg)."""
    control = ControlLoopConfig(gain=gain, recursion_factor=recursion,
                                sample_rate=800e3)
    cfg = bench_config(record_every=8, control=control, jump_start_time=0.002)
    res = CavityInTheLoop(cfg).run(0.05)
    tail = res.phase_deg[(res.time > 0.035)]
    return float(tail.max() - tail.min())


def test_control_parameter_sweep(benchmark, report):
    gains = [-20.0, -5.0, -1.0, 0.0]
    recursions = [0.9, 0.99, 0.999]

    def sweep():
        table = {}
        for g in gains:
            table[("gain", g)] = _settling_metric(g, 0.99)
        for r in recursions:
            table[("rec", r)] = _settling_metric(-5.0, r)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = ["gain sweep (recursion = 0.99):"]
    for g in gains:
        marker = "  <- paper" if g == -5.0 else ""
        rows.append(f"  gain {g:+6.1f}: residual pp {table[('gain', g)]:8.3f} deg{marker}")
    rows.append("recursion sweep (gain = -5):")
    for r in recursions:
        marker = "  <- paper" if r == 0.99 else ""
        rows.append(f"  r = {r:5.3f}: residual pp {table[('rec', r)]:8.3f} deg{marker}")
    rows.append(
        "gain 0 leaves the oscillation undamped; the paper's (-5, 0.99) "
        "settles fully inside the 50 ms window."
    )
    report(benchmark, "A5 — control parameter sweep", rows)

    assert table[("gain", -5.0)] < 0.5          # paper point: fully damped
    assert table[("gain", 0.0)] > 10.0          # open loop: still swinging
    assert table[("rec", 0.99)] <= min(table[("rec", 0.9)], table[("rec", 0.999)]) + 0.5
