"""E8 — model-change turnaround: CGRA seconds vs. FPGA synthesis hours.

Measures the actual wall clock of our tool flow per model variant and
compares with the modelled full-synthesis alternative.
"""

from repro.experiments.reconfig import reconfiguration_table


def test_reconfiguration_turnaround(benchmark, report):
    rows_data = benchmark.pedantic(reconfiguration_table, rounds=2, iterations=1)

    rows = [
        "model variant              CGRA flow     FPGA synthesis    speedup",
    ]
    for r in rows_data:
        label = f"{r.n_bunches} bunches, {'pipelined' if r.pipelined else 'plain    '}"
        rows.append(
            f"{label:26s} {r.cgra_seconds * 1e3:8.1f} ms   "
            f"{r.fpga_seconds / 3600:6.2f} h        {r.speedup:10.0f}x"
        )
    rows.append(
        'paper: "available on the experimental setup in seconds (compared '
        'to a full FPGA synthesis that can easily take hours)" — reproduced.'
    )
    report(benchmark, "E8 — reconfiguration turnaround", rows)

    for r in rows_data:
        assert r.cgra_seconds < 30.0
        assert r.fpga_seconds > 3600.0
