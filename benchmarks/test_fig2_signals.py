"""E2 — Fig. 2: bench input/output signals (h = 2 snapshot).

Regenerates the three traces through the sample-accurate component chain
and times the generation of a two-revolution window at 250 MHz.
"""

import numpy as np

from repro.experiments.fig2 import fig2_signal_snapshot


def test_fig2_signals(benchmark, report):
    data = benchmark(fig2_signal_snapshot)

    ref_f = np.argmax(np.abs(np.fft.rfft(data.reference)))
    gap_f = np.argmax(np.abs(np.fft.rfft(data.gap)))
    n_pulses = int(np.count_nonzero(
        (data.beam[1:] > 0.5 * data.beam.max()) & (data.beam[:-1] <= 0.5 * data.beam.max())
    ))
    rows = [
        f"window: {len(data.time)} samples at 250 MHz "
        f"({data.time[-1] * 1e6:.2f} us, 2 revolutions)",
        f"reference fundamental bin {ref_f}, gap fundamental bin {gap_f} "
        f"(ratio {gap_f / ref_f:.1f} = harmonic number)",
        f"beam pulses in window: {n_pulses} (h = 2 bunches x 2 revolutions)",
        f"bunch displacement: {data.bunch_offsets[0] * 1e9:.0f} ns "
        "(non-equilibrium snapshot, as in the paper's figure)",
    ]
    report(benchmark, "Fig. 2 — input/output signals (h = 2)", rows)

    assert gap_f == 2 * ref_f
    assert n_pulses == 4
