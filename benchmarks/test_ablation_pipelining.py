"""Ablation A1 — loop pipelining and bunch-count scaling.

Sweeps the bunch count with pipelining on and off, separating the two
effects the paper reports: pipelining removes the serial stage-1+stage-2
critical path; each extra bunch adds SensorAccess port pressure.
"""

from repro.cgra.models import compile_beam_model


def _sweep():
    out = {}
    for pipelined in (False, True):
        for n in (1, 2, 4, 6, 8):
            m = compile_beam_model(n_bunches=n, pipelined=pipelined)
            out[(n, pipelined)] = (m.schedule_length, m.max_f_rev)
    return out


def test_pipelining_bunch_sweep(benchmark, report):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = ["bunches   plain ticks   pipelined ticks   saving   max f_rev (pipelined)"]
    for n in (1, 2, 4, 6, 8):
        plain, _ = table[(n, False)]
        piped, fmax = table[(n, True)]
        rows.append(
            f"{n:6d}   {plain:10d}   {piped:14d}   {plain - piped:6d}   "
            f"{fmax / 1e6:6.3f} MHz"
        )
    per_bunch = (table[(8, True)][0] - table[(1, True)][0]) / 7
    rows.append(
        f"marginal cost per bunch (pipelined): {per_bunch:.1f} ticks "
        "(paper: (111-93)/7 = 2.6 ticks — SensorAccess serialisation)"
    )
    report(benchmark, "A1 — pipelining x bunch count", rows)

    for n in (1, 2, 4, 6, 8):
        assert table[(n, True)][0] < table[(n, False)][0]
    assert 0 < per_bunch < 8
